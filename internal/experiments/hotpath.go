package experiments

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/sched"
)

// System labels for the hotpath experiment.
const (
	SysSharded     = "Sharded run queues"
	SysSingleQueue = "Single queue (pre-shard baseline)"
)

const (
	// hotpathPayload is one simulated kernel page: the smallest transfer
	// the data plane moves, which maximises the scheduler's share of each
	// task and makes the experiment a dispatch benchmark rather than a
	// bandwidth benchmark.
	hotpathPayload = 4 << 10
	// hotpathTasksPerWorker scales the load with the worker count so every
	// sweep point measures the same per-worker task pressure; sized for
	// tens of milliseconds of steady state per point, enough to dampen
	// scheduler-noise jitter in the recorded trajectory.
	hotpathTasksPerWorker = 4096
	// hotpathQueue is the per-point submission-queue depth; deep enough
	// that admission backpressure never idles a worker mid-run.
	hotpathQueue = 256
)

// hotpathSpeedupBound is the acceptance bar BENCH_8 pins on machines with
// enough cores to expose submit-side contention: at GOMAXPROCS >= 8, the
// sharded pool must deliver at least this multiple of the single-queue
// baseline's aggregate small-transfer throughput at the full worker count.
// Below 8 cores the sweep still runs and records both systems, but the
// ratio is dominated by the data plane rather than the scheduler, so the
// bound is not enforced.
const hotpathSpeedupBound = 5.0

// hotpathEnforceAt is the GOMAXPROCS threshold above which the speedup
// bound applies.
const hotpathEnforceAt = 8

// submitPool is the slice of the scheduler API the experiment drives —
// satisfied by both sched.Pool and sched.SingleQueuePool, so the sweep can
// run the identical workload through each implementation.
type submitPool interface {
	Submit(fn func()) error
	Wait()
	Close()
}

// Hotpath measures aggregate small-transfer throughput across a warm
// replicated pool as the worker count grows from 1 to GOMAXPROCS — the
// BENCH_8 scheduler-scaling experiment (not a paper figure; the paper's
// sweeps hold concurrency fixed and grow the payload). Each task is one
// warm same-node kernel-space transfer of a single 4 KiB page between a
// pinned (source, target) replica pair, so the per-task data-plane cost is
// as small as the platform can make it and the run's scaling is governed
// by the dispatch path: the sharded per-worker run queues versus the
// pre-shard single mutex-guarded queue. On machines with GOMAXPROCS >= 8
// the run errors if the sharded pool's aggregate throughput at the full
// worker count is not at least 5x the single-queue baseline's — the bound
// that keeps the scheduler shard from silently re-serializing.
func Hotpath(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	maxW := runtime.GOMAXPROCS(0)
	res := &Result{
		ID:     "hotpath",
		Mode:   "sched-scaling",
		Title:  fmt.Sprintf("Aggregate %d KiB kernel-transfer throughput, 1..%d workers", hotpathPayload>>10, maxW),
		XLabel: "workers",
	}

	var shardedBest, singleBest float64
	for _, w := range hotpathWorkerAxis(maxW) {
		sharded, err := hotpathPoint(SysSharded, w, sched.New(w, hotpathQueue))
		if err != nil {
			return nil, fmt.Errorf("sharded w=%d: %w", w, err)
		}
		single, err := hotpathPoint(SysSingleQueue, w, sched.NewSingleQueue(w, hotpathQueue))
		if err != nil {
			return nil, fmt.Errorf("single-queue w=%d: %w", w, err)
		}
		res.Points = append(res.Points, sharded, single)
		if w == maxW {
			shardedBest, singleBest = sharded.RPS, single.RPS
		}
	}

	if singleBest <= 0 || shardedBest <= 0 {
		return nil, fmt.Errorf("degenerate throughput: sharded %.1f rps, single-queue %.1f rps", shardedBest, singleBest)
	}
	speedup := shardedBest / singleBest
	res.Notes = append(res.Notes, fmt.Sprintf(
		"aggregate throughput at %d worker(s): %.0f rps sharded vs %.0f rps single-queue (%.2fx; bound %.0fx enforced at GOMAXPROCS>=%d)",
		maxW, shardedBest, singleBest, speedup, hotpathSpeedupBound, hotpathEnforceAt))
	if maxW >= hotpathEnforceAt && speedup < hotpathSpeedupBound {
		return nil, fmt.Errorf("sharded pool delivered %.2fx the single-queue baseline at %d workers — below the %.0fx bound",
			speedup, maxW, hotpathSpeedupBound)
	}
	return res, nil
}

// hotpathWorkerAxis returns the sweep's worker counts: powers of two from 1
// up to, and always including, GOMAXPROCS.
func hotpathWorkerAxis(maxW int) []int {
	axis := []int{}
	for w := 1; w < maxW; w <<= 1 {
		axis = append(axis, w)
	}
	return append(axis, maxW)
}

// hotpathPoint drives one (system, workers) measurement: a fresh platform
// with w source and w target replicas on one node, every (i, i) replica
// pair's kernel channel warmed by an untimed transfer, then w *
// hotpathTasksPerWorker transfers submitted through the pool and drained.
// Throughput is tasks over the submit-to-drain wall clock; latency is the
// mean per-transfer occupancy (wall clock times workers over tasks).
func hotpathPoint(system string, w int, pool submitPool) (Point, error) {
	defer pool.Close()
	p := roadrunner.New()
	defer p.Close()
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "src", Replicas: w, Node: "cloud"})
	if err != nil {
		return Point{}, err
	}
	dst, err := p.Deploy(roadrunner.FunctionSpec{Name: "dst", Replicas: w, Node: "cloud"})
	if err != nil {
		return Point{}, err
	}

	// Pin each lane to its own replica pair: distinct shims execute in
	// parallel, and the warm-up transfer below establishes each pair's
	// persistent kernel channel so the timed run is all warm path. The
	// source produces its page once; every transfer re-reads that output.
	xfer := func(lane int) error {
		ref, _, err := p.Transfer(src, dst,
			roadrunner.WithSourceInstance(src.Instance(lane)),
			roadrunner.WithTargetInstance(dst.Instance(lane)))
		if err != nil {
			return err
		}
		return dst.Instance(lane).Release(ref)
	}
	for lane := 0; lane < w; lane++ {
		if err := src.Instance(lane).Produce(hotpathPayload); err != nil {
			return Point{}, fmt.Errorf("produce lane %d: %w", lane, err)
		}
		if err := xfer(lane); err != nil {
			return Point{}, fmt.Errorf("warm-up lane %d: %w", lane, err)
		}
	}

	tasks := w * hotpathTasksPerWorker
	var failed atomic.Pointer[error]
	start := time.Now()
	for k := 0; k < tasks; k++ {
		lane := k % w
		if err := pool.Submit(func() {
			if err := xfer(lane); err != nil {
				failed.CompareAndSwap(nil, &err)
			}
		}); err != nil {
			return Point{}, fmt.Errorf("submit %d: %w", k, err)
		}
	}
	pool.Wait()
	wall := time.Since(start)
	if perr := failed.Load(); perr != nil {
		return Point{}, *perr
	}
	if wall <= 0 {
		return Point{}, fmt.Errorf("degenerate wall clock %v", wall)
	}

	pt := pointFromPublic(system, float64(w), roadrunner.Report{})
	pt.RPS = float64(tasks) / wall.Seconds()
	pt.Latency = wall * time.Duration(w) / time.Duration(tasks)
	return pt, nil
}
