package experiments

import (
	"fmt"
	"runtime"
	"time"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
)

// System labels for the fanoutshare experiment.
const (
	SysSharedEgress = "Shared egress (tee group)"
	SysPerTargetFan = "Per-target (ablation)"
)

// fanoutShareDegrees is the experiment's target-count axis: same-node
// fan-out degrees from unicast-equivalent up to 16.
var fanoutShareDegrees = []int{1, 2, 4, 8, 16}

// fanoutShareSpeedupBound is the acceptance bar BENCH_9 pins on machines
// with enough cores to run the tee group's drains in parallel: at
// GOMAXPROCS >= fanoutShareEnforceCores, shared egress must deliver at
// least this multiple of the per-target ablation's aggregate delivery
// throughput at every degree >= fanoutShareEnforceFromDegree. Below that
// core count the sweep still runs and records both systems, but the
// drains time-slice instead of overlapping, the ratio collapses toward
// the copy-count ratio alone, and the bound is not enforced.
const fanoutShareSpeedupBound = 3.0

// fanoutShareEnforceFromDegree is the fan-out degree from which the
// speedup bound applies.
const fanoutShareEnforceFromDegree = 8

// fanoutShareEnforceCores is the GOMAXPROCS threshold above which the
// speedup bound applies.
const fanoutShareEnforceCores = 8

// FanoutShare measures aggregate same-node delivery throughput as the
// fan-out degree grows — the BENCH_9 shared-egress experiment (not a paper
// figure; the paper's fan-out sweeps pre-date the tee group). Each point
// runs one produce-once fan-out from a source sandbox to N target
// sandboxes on one node: the shared-egress system serves all N targets
// from a single vmsplice+tee pass over the source (zero source-side
// payload copies, drains overlapped across target VMs), while the
// per-target ablation (WithPerTargetFanout) pays N independent kernel
// unicast transfers whose source-side copies serialize under the source VM
// lock. On machines with GOMAXPROCS >= 8 the run errors if shared egress
// is not at least 3x the ablation at every degree >= 8 — the bound that
// keeps the fan-out path from silently regressing to O(N) source work.
func FanoutShare(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	payload := opts.FanoutPayloadMB * MB
	cores := runtime.GOMAXPROCS(0)
	res := &Result{
		ID:     "fanoutshare",
		Mode:   "fanout-share",
		Title:  fmt.Sprintf("Same-node fan-out, shared egress vs per-target, %d MB payload", opts.FanoutPayloadMB),
		XLabel: "targets",
	}

	for _, degree := range fanoutShareDegrees {
		shared, sharedCopies, err := fanoutSharePoint(SysSharedEgress, degree, payload, opts.Runs, false)
		if err != nil {
			return nil, fmt.Errorf("shared degree %d: %w", degree, err)
		}
		ablation, ablationCopies, err := fanoutSharePoint(SysPerTargetFan, degree, payload, opts.Runs, true)
		if err != nil {
			return nil, fmt.Errorf("per-target degree %d: %w", degree, err)
		}
		res.Points = append(res.Points, shared, ablation)
		if ablation.RPS <= 0 || shared.RPS <= 0 {
			return nil, fmt.Errorf("degenerate throughput at degree %d: shared %.1f rps, per-target %.1f rps", degree, shared.RPS, ablation.RPS)
		}
		speedup := shared.RPS / ablation.RPS
		res.Notes = append(res.Notes, fmt.Sprintf(
			"degree %d: %.0f vs %.0f deliveries/s (%.2fx); kernel-boundary copy bytes %d shared vs %d per-target",
			degree, shared.RPS, ablation.RPS, speedup, sharedCopies, ablationCopies))
		// The zero-copy invariant is structural, not statistical: the
		// shared pass must never push payload across the kernel boundary,
		// at any degree, on any machine.
		if sharedCopies != 0 {
			return nil, fmt.Errorf("degree %d: shared egress crossed the kernel boundary with %d payload bytes, want 0", degree, sharedCopies)
		}
		if degree >= fanoutShareEnforceFromDegree && cores >= fanoutShareEnforceCores && speedup < fanoutShareSpeedupBound {
			return nil, fmt.Errorf("shared egress delivered %.2fx the per-target ablation at degree %d — below the %.1fx bound",
				speedup, degree, fanoutShareSpeedupBound)
		}
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"bound %.1fx enforced from degree %d at GOMAXPROCS>=%d (have %d)",
		fanoutShareSpeedupBound, fanoutShareEnforceFromDegree, fanoutShareEnforceCores, cores))
	return res, nil
}

// fanoutSharePoint drives one (system, degree) measurement: a fresh
// platform with the source and degree single-replica targets on one node,
// channels warmed by an untimed fan-out, then opts.Runs timed fan-outs.
// Throughput is deliveries over the fan-out's wall clock; the returned
// copy count is the kernel-boundary payload volume summed across the last
// run's target reports (zero for the tee group, 2·payload per target for
// the kernel unicast ablation).
func fanoutSharePoint(system string, degree, payload, runs int, perTarget bool) (Point, int64, error) {
	p := roadrunner.New(roadrunner.WithNodes("node"), roadrunner.WithWorkers(runtime.GOMAXPROCS(0)))
	defer p.Close()
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "src", Node: "node"})
	if err != nil {
		return Point{}, 0, err
	}
	targets := make([]*roadrunner.Function, degree)
	for i := range targets {
		if targets[i], err = p.Deploy(roadrunner.FunctionSpec{Name: fmt.Sprintf("t%d", i), Node: "node"}); err != nil {
			return Point{}, 0, err
		}
	}
	var xopts []roadrunner.TransferOption
	if perTarget {
		xopts = append(xopts, roadrunner.WithPerTargetFanout(true))
	}

	var (
		kernelCopies int64
		lastReports  []roadrunner.Report
	)
	run := func() (time.Duration, error) {
		start := time.Now()
		refs, reports, err := p.Fanout(src, targets, payload, xopts...)
		wall := time.Since(start)
		if err != nil {
			return 0, err
		}
		kernelCopies = 0
		lastReports = reports
		for i := range targets {
			kernelCopies += reports[i].Usage.KernelCopyBytes
			if err := targets[i].Release(refs[i]); err != nil {
				return 0, err
			}
		}
		si := src.Instance(0)
		if out, oerr := si.Output(); oerr == nil {
			if err := si.Release(out); err != nil {
				return 0, err
			}
		}
		return wall, nil
	}
	if _, err := run(); err != nil { // warm-up: channels established untimed
		return Point{}, 0, err
	}
	var total time.Duration
	for r := 0; r < runs; r++ {
		wall, err := run()
		if err != nil {
			return Point{}, 0, err
		}
		total += wall
	}
	wall := total / time.Duration(runs)
	if wall <= 0 {
		return Point{}, 0, fmt.Errorf("degenerate wall clock %v", wall)
	}
	flats := make([]flatRep, len(lastReports))
	for i, r := range lastReports {
		flats[i] = flatFromPublic(r)
	}
	pt := fanoutPoint(system, degree, flats)
	// Unlike the modeled Fig. 9 makespan, this sweep has a measured wall
	// clock — latency is the fan-out's wall time and throughput is real
	// deliveries per second, which is what the tee group's overlapped
	// drains improve.
	pt.Latency = wall
	pt.RPS = float64(degree) * float64(time.Second) / float64(wall)
	return pt, kernelCopies, nil
}
