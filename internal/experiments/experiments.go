// Package experiments regenerates every table and figure of the paper's
// evaluation (§6): the motivation measurements (Fig. 2), the inter-node
// latency breakdown (Fig. 6), the intra- and inter-node payload sweeps
// (Fig. 7, Fig. 8) and the fan-out scalability studies (Fig. 9, Fig. 10).
//
// Each runner builds a fresh simulated deployment per data point, executes
// the paper's workload (chained I/O-bound functions exchanging serialized
// strings, §6.1), and reports the same metrics the paper plots: total and
// serialization latency, extrapolated requests/second, total/user/kernel CPU
// share, and RAM. The "serialization latency" of the Roadrunner systems is
// their data-access (Wasm I/O) time, since their paths carry no codec — the
// quantity the paper's serialization panels show for Roadrunner.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
)

// MB is 10^6 bytes, matching the paper's payload-size axis.
const MB = 1_000_000

// Options scales the experiment sweeps. The zero value yields laptop-scale
// defaults; Full() yields the paper's axes (minutes of runtime).
type Options struct {
	// SizesMB are the payload sizes for the Fig. 7/8 sweeps.
	SizesMB []int
	// Fig6PayloadMB is the single payload of the Fig. 6 breakdown
	// (paper: 100 MB).
	Fig6PayloadMB int
	// FanoutDegrees are the Fig. 9/10 fan-out axes (paper: up to 100).
	FanoutDegrees []int
	// FanoutPayloadMB is the per-transfer payload in the fan-out
	// experiments (paper: 10 MB).
	FanoutPayloadMB int
	// Runs averages every point over this many repetitions.
	Runs int
}

// withDefaults fills unset fields with scaled defaults.
func (o Options) withDefaults() Options {
	if len(o.SizesMB) == 0 {
		o.SizesMB = []int{1, 4, 16, 64}
	}
	if o.Fig6PayloadMB == 0 {
		o.Fig6PayloadMB = 16
	}
	if len(o.FanoutDegrees) == 0 {
		o.FanoutDegrees = []int{1, 5, 10, 25, 50}
	}
	if o.FanoutPayloadMB == 0 {
		o.FanoutPayloadMB = 1
	}
	if o.Runs <= 0 {
		o.Runs = 1
	}
	return o
}

// Full returns the paper's axes: 1–500 MB sweeps, 10 MB fan-outs to degree
// 100, 100 MB breakdown.
func Full() Options {
	return Options{
		SizesMB:         []int{1, 10, 50, 100, 250, 500},
		Fig6PayloadMB:   100,
		FanoutDegrees:   []int{1, 10, 25, 50, 75, 100},
		FanoutPayloadMB: 10,
		Runs:            1,
	}
}

// Quick returns the smallest meaningful axes, for tests and `go test -bench`.
func Quick() Options {
	return Options{
		SizesMB:         []int{1, 4},
		Fig6PayloadMB:   4,
		FanoutDegrees:   []int{1, 8},
		FanoutPayloadMB: 1,
		Runs:            1,
	}
}

// SchemaVersion identifies the layout of roadrunner-bench output (both the
// table header line and the -json document), so CI benchmark smoke runs can
// be diffed across PRs. Version 3 added the breakdown's Setup component and
// the chancache warm/cold experiment; version 4 added the breakdown's
// Overlap component (critical-path credit of the staged pipeline) and the
// pipeline chain experiment; version 5 added the placement experiment
// (locality vs round-robin routing over replicated instance pools);
// version 6 added the failure experiment (aggregate throughput with 1 of
// 16 replicas killed mid-load, pinned to proportional degradation);
// version 7 added the hotpath experiment (aggregate small-transfer
// throughput, 1..GOMAXPROCS workers, sharded run queues vs the
// single-queue scheduler baseline); version 8 added the fanoutshare
// experiment (same-node delivery throughput vs fan-out degree, shared
// egress vs the per-target ablation, with the 3x speedup bound at
// degree >= 8).
const SchemaVersion = 8

// Point is one (system, x) measurement carrying every panel of the paper's
// figure grids.
type Point struct {
	System string  `json:"system"`
	X      float64 `json:"x"` // payload MB or fan-out degree

	Latency    time.Duration `json:"latency_ns"`     // panel (a): total latency
	RPS        float64       `json:"rps"`            // panel (b): total throughput
	SerLatency time.Duration `json:"ser_latency_ns"` // panel (c): serialization latency
	SerRPS     float64       `json:"ser_rps"`        // panel (d): serialization throughput

	CPUTotal  float64 `json:"cpu_total_pct"`  // panel (e): total CPU %
	CPUUser   float64 `json:"cpu_user_pct"`   // panel (f): user-space CPU %
	CPUKernel float64 `json:"cpu_kernel_pct"` // panel (g): kernel-space CPU %
	RAMMB     float64 `json:"ram_mb"`         // panel (h): memory usage

	Breakdown roadrunner.Breakdown `json:"breakdown"` // component decomposition (Fig. 6a)
}

// Result is one regenerated figure.
type Result struct {
	ID string `json:"id"`
	// Mode names the transfer regime the experiment exercises (e.g.
	// "intra-node", "inter-node", "fanout-inter", "coldstart").
	Mode   string   `json:"mode"`
	Title  string   `json:"title"`
	XLabel string   `json:"xlabel"`
	Points []Point  `json:"points"`
	Notes  []string `json:"notes,omitempty"`
}

// Print renders the result as an aligned table, prefixed by the
// schema/mode identification line CI diffs key on.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "# schema_version=%d id=%s mode=%s\n", SchemaVersion, r.ID, r.Mode)
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "system\t%s\tlatency\trps\tser.latency\tser.rps\tcpu%%\tuser%%\tkernel%%\tram(MB)\n", r.XLabel)
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%s\t%g\t%s\t%.2f\t%s\t%.0f\t%.3f\t%.3f\t%.3f\t%.1f\n",
			p.System, p.X,
			fmtDur(p.Latency), p.RPS,
			fmtDur(p.SerLatency), p.SerRPS,
			p.CPUTotal, p.CPUUser, p.CPUKernel, p.RAMMB)
	}
	tw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "0"
	}
	return fmt.Sprintf("%.6gs", d.Seconds())
}

// pointFromPublic derives a Point from a public-API report.
func pointFromPublic(system string, xMB float64, rep roadrunner.Report) Point {
	return buildPoint(system, xMB,
		rep.Latency(), rep.Breakdown.Serialization+rep.Breakdown.WasmIO,
		rep.Usage.UserCPU, rep.Usage.KernelCPU, rep.Usage.PeakResident,
		rep.Breakdown)
}

// pointFromMetrics derives a Point from an internal baseline report.
func pointFromMetrics(system string, xMB float64, rep metrics.TransferReport) Point {
	bd := roadrunner.Breakdown{
		Setup:         rep.Breakdown.Setup,
		Transfer:      rep.Breakdown.Transfer,
		Serialization: rep.Breakdown.Serialization,
		WasmIO:        rep.Breakdown.WasmIO,
		Network:       rep.Breakdown.Network,
		Compute:       rep.Breakdown.Compute,
		Overlap:       rep.Breakdown.Overlap,
	}
	return buildPoint(system, xMB,
		rep.Latency(), rep.Breakdown.Serialization+rep.Breakdown.WasmIO,
		rep.Usage.UserCPU, rep.Usage.KernelCPU, rep.Usage.PeakResident,
		bd)
}

func buildPoint(system string, x float64, latency, serLatency time.Duration, userCPU, kernelCPU time.Duration, peakResident int64, bd roadrunner.Breakdown) Point {
	p := Point{
		System:     system,
		X:          x,
		Latency:    latency,
		SerLatency: serLatency,
		RAMMB:      float64(peakResident) / MB,
		Breakdown:  bd,
	}
	if latency > 0 {
		p.RPS = float64(time.Second) / float64(latency)
		p.CPUUser = float64(userCPU) / float64(latency) * 100
		p.CPUKernel = float64(kernelCPU) / float64(latency) * 100
		p.CPUTotal = p.CPUUser + p.CPUKernel
	}
	if serLatency > 0 {
		p.SerRPS = float64(time.Second) / float64(serLatency)
	}
	return p
}

// averagePoints folds repeated measurements of the same (system, x) pair.
func averagePoints(points []Point) Point {
	if len(points) == 1 {
		return points[0]
	}
	out := points[0]
	for _, p := range points[1:] {
		out.Latency += p.Latency
		out.SerLatency += p.SerLatency
		out.RPS += p.RPS
		out.SerRPS += p.SerRPS
		out.CPUTotal += p.CPUTotal
		out.CPUUser += p.CPUUser
		out.CPUKernel += p.CPUKernel
		out.RAMMB += p.RAMMB
		out.Breakdown.Setup += p.Breakdown.Setup
		out.Breakdown.Transfer += p.Breakdown.Transfer
		out.Breakdown.Serialization += p.Breakdown.Serialization
		out.Breakdown.WasmIO += p.Breakdown.WasmIO
		out.Breakdown.Network += p.Breakdown.Network
		out.Breakdown.Compute += p.Breakdown.Compute
		out.Breakdown.Overlap += p.Breakdown.Overlap
	}
	n := time.Duration(len(points))
	fn := float64(len(points))
	out.Latency /= n
	out.SerLatency /= n
	out.RPS /= fn
	out.SerRPS /= fn
	out.CPUTotal /= fn
	out.CPUUser /= fn
	out.CPUKernel /= fn
	out.RAMMB /= fn
	out.Breakdown.Setup /= n
	out.Breakdown.Transfer /= n
	out.Breakdown.Serialization /= n
	out.Breakdown.WasmIO /= n
	out.Breakdown.Network /= n
	out.Breakdown.Compute /= n
	out.Breakdown.Overlap /= n
	return out
}

// System labels used across figures (paper naming).
const (
	SysRRUser    = "RoadRunner (User space)"
	SysRRKernel  = "RoadRunner (Kernel space)"
	SysRRNetwork = "RoadRunner (Network)"
	SysRunC      = "RunC"
	SysWasmEdge  = "Wasmedge"
)

// Registry maps experiment IDs to runners.
var Registry = map[string]func(Options) (*Result, error){
	"fig2a":       Fig2a,
	"fig2b":       Fig2b,
	"fig6":        Fig6,
	"fig7":        Fig7,
	"fig8":        Fig8,
	"fig9":        Fig9,
	"fig10":       Fig10,
	"chancache":   ChanCache,
	"pipeline":    Pipeline,
	"placement":   Placement,
	"failure":     Failure,
	"hotpath":     Hotpath,
	"fanoutshare": FanoutShare,
}

// IDs lists the experiment identifiers, paper figures first.
func IDs() []string {
	return []string{"fig2a", "fig2b", "fig6", "fig7", "fig8", "fig9", "fig10", "chancache", "pipeline", "placement", "failure", "hotpath", "fanoutshare"}
}

// RunAll executes every experiment and prints the results.
func RunAll(w io.Writer, opts Options) error {
	for _, id := range IDs() {
		res, err := Registry[id](opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		res.Print(w)
	}
	return nil
}

// headline produces "A improves on B by X%" comparison notes.
func headline(metric string, a, b string, va, vb time.Duration) string {
	if vb <= 0 {
		return ""
	}
	impr := (1 - float64(va)/float64(vb)) * 100
	return fmt.Sprintf("%s: %s vs %s: %+.1f%% (%.4gs vs %.4gs)", metric, a, b, impr, va.Seconds(), vb.Seconds())
}

var _ = strings.TrimSpace // reserved for future notes formatting
