//go:build race

package experiments

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation skews the wall-clock ratios some shape tests pin.
const raceEnabled = true
