package experiments

import (
	"fmt"
	"time"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
)

// System labels for the pipeline comparison.
const (
	SysRRChainPipelined = "RoadRunner (chain, pipelined)"
	SysRRChainLocked    = "RoadRunner (chain, phase-locked)"
)

// Pipeline contrasts the staged data-plane pipeline against the
// phase-locked execution regime on multi-hop chains (not a paper figure —
// the paper's testbed runs each shim as its own process, so its transfers
// are staged by construction; the phase-locked regime is this
// reproduction's pre-pipeline engine, kept as the ablation baseline).
// Every chain hop is a network transfer whose payload crosses the data
// hose in several chunks; the pipelined regime overlaps each hop's source
// egress, wire and target ingress chunk-by-chunk (reported as the
// Breakdown.Overlap credit), while the phase-locked regime runs them
// strictly in sequence. Both regimes issue identical syscall and copy
// sequences, so the latency gap is pure critical-path scheduling.
func Pipeline(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		ID:     "pipeline",
		Mode:   "chain-pipeline",
		Title:  "Staged pipeline vs phase-locked execution on multi-hop chains",
		XLabel: "hops",
	}
	n := opts.FanoutPayloadMB * MB
	for _, hops := range []int{3, 5} {
		for _, regime := range []struct {
			system      string
			phaseLocked bool
		}{
			{SysRRChainPipelined, false},
			{SysRRChainLocked, true},
		} {
			pt, err := pipelineChainPoint(regime.system, hops, n, opts.Runs, regime.phaseLocked)
			if err != nil {
				return nil, fmt.Errorf("%s, %d hops: %w", regime.system, hops, err)
			}
			res.Points = append(res.Points, pt)
		}
	}
	res.Notes = append(res.Notes, pipelineHeadlines(res.Points)...)
	return res, nil
}

// pipelineChainPoint measures one (regime, depth) cell on a fresh
// deployment: a chain over depth+1 dedicated shims alternating edge and
// cloud placement, every hop a multi-chunk network transfer over a
// 100 Gbps / 10 µs link (a DC-class link whose wire time is comparable to
// the endpoint stages, so the pipeline has all three stage classes to
// overlap).
func pipelineChainPoint(system string, hops, n, runs int, phaseLocked bool) (Point, error) {
	p := roadrunner.New(
		roadrunner.WithLink(100*roadrunner.Gbps, 10*time.Microsecond),
		roadrunner.WithDataHoseSize(128<<10),
	)
	defer p.Close()
	fns := make([]*roadrunner.Function, hops+1)
	for i := range fns {
		node := "edge"
		if i%2 == 1 {
			node = "cloud"
		}
		var err error
		if fns[i], err = p.Deploy(roadrunner.FunctionSpec{Name: fmt.Sprintf("f%d", i), Node: node}); err != nil {
			return Point{}, err
		}
	}
	var topts []roadrunner.TransferOption
	if phaseLocked {
		topts = append(topts, roadrunner.WithPhaseLocked(true))
	}
	release := func(ref roadrunner.DataRef) error {
		// Release every hop's region so repeated runs measure a flat heap:
		// after a hop, a function's current output is its inbound region.
		if err := fns[len(fns)-1].Release(ref); err != nil {
			return err
		}
		for _, f := range fns[:len(fns)-1] {
			out, err := f.Output()
			if err != nil {
				return err
			}
			if err := f.Release(out); err != nil {
				return err
			}
		}
		return nil
	}
	// Warmup: establish the per-pair channels and grow the linear memories,
	// so the measured runs below are the steady state (the chancache
	// experiment measures the cold regime explicitly).
	for w := 0; w < 2; w++ {
		ref, _, err := p.ChainWith(n, topts, fns...)
		if err != nil {
			return Point{}, err
		}
		if err := release(ref); err != nil {
			return Point{}, err
		}
	}
	// Best-of-N: stage activity is measured wall time, so on a loaded (or
	// single-core) host the overlapped stages pick up scheduling noise; the
	// minimum-latency run is the standard robust estimator for the regime's
	// true cost. At least 5 runs even when the sweep is configured for 1.
	if runs < 5 {
		runs = 5
	}
	var best *Point
	for r := 0; r < runs; r++ {
		ref, rep, err := p.ChainWith(n, topts, fns...)
		if err != nil {
			return Point{}, err
		}
		if err := verifyChecksum(fns[len(fns)-1], ref, n); err != nil {
			return Point{}, err
		}
		if phaseLocked && rep.Breakdown.Overlap != 0 {
			return Point{}, fmt.Errorf("phase-locked chain reported overlap %v", rep.Breakdown.Overlap)
		}
		if err := release(ref); err != nil {
			return Point{}, err
		}
		pt := pointFromPublic(system, float64(hops), rep)
		if best == nil || pt.Latency < best.Latency {
			best = &pt
		}
	}
	return *best, nil
}

// pipelineHeadlines summarizes the pipelined-vs-phase-locked win per depth.
func pipelineHeadlines(points []Point) []string {
	byDepth := map[float64]map[string]Point{}
	for _, p := range points {
		if byDepth[p.X] == nil {
			byDepth[p.X] = map[string]Point{}
		}
		byDepth[p.X][p.System] = p
	}
	var notes []string
	for _, depth := range []float64{3, 5} {
		cell := byDepth[depth]
		pipe, okP := cell[SysRRChainPipelined]
		lock, okL := cell[SysRRChainLocked]
		if !okP || !okL {
			continue
		}
		if note := headline(fmt.Sprintf("%g-hop chain latency", depth), SysRRChainPipelined, SysRRChainLocked, pipe.Latency, lock.Latency); note != "" {
			notes = append(notes, note)
		}
		if lock.RPS > 0 {
			notes = append(notes, fmt.Sprintf("%g-hop aggregate throughput: pipelined %.0f rps vs phase-locked %.0f rps (%+.1f%%), overlap credit %.3gs",
				depth, pipe.RPS, lock.RPS, (pipe.RPS/lock.RPS-1)*100, pipe.Breakdown.Overlap.Seconds()))
		}
	}
	return notes
}
