package experiments

import (
	"fmt"
	"sort"
	"time"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
)

// System labels for the failure experiment.
const (
	SysRRAllHealthy = "RoadRunner (16/16 replicas healthy)"
	SysRRDegraded   = "RoadRunner (1/16 replicas killed mid-load)"
)

const (
	// failureReplicas sizes both pools: the 1-of-16 replica-death scenario
	// of the acceptance criteria (DESIGN.md §8).
	failureReplicas = 16
	// failurePerReplica invocations land on each replica in the healthy
	// run, enough that losing one replica shifts per-survivor load by only
	// its proportional share (16/15) rather than a whole-invocation quantum.
	failurePerReplica = 30
	// failurePayload keeps the experiment about routing capacity, not
	// bandwidth.
	failurePayload = 128 << 10
	// failureDoomed is the replica index the kill run crashes.
	failureDoomed = 3
)

// failureDegradeBound is the acceptance bar BENCH_6 pins: killing a
// fraction f of the replicas may degrade aggregate throughput by at most
// 2×f — proportional degradation, not collapse.
const failureDegradeBound = 2.0 / failureReplicas

// Failure measures how aggregate invocation throughput degrades when 1 of
// 16 replicas is killed mid-load (the BENCH_6 degrade-under-kill
// experiment, not a paper figure — the paper deploys one instance per
// function). Two identical 16-replica deployments run the same 480
// routed invocations; in the second, one target replica crashes at its
// 2nd data-plane syscall, so its first delivery faults mid-transfer, the
// invoker plane re-routes it onto a surviving replica, and the health FSM
// excludes the corpse from every later placement decision. The run errors
// if any invocation fails outright, or if throughput degrades by more
// than 2× the killed capacity fraction (12.5%) — which is what pins
// "degrades proportionally, not collapses" in CI.
func Failure(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		ID:     "failure",
		Mode:   "degrade-under-kill",
		Title:  "Aggregate throughput with 1 of 16 replicas killed mid-load",
		XLabel: "replicas",
	}
	baseRun, err := failurePoint(SysRRAllHealthy, false)
	if err != nil {
		return nil, fmt.Errorf("healthy run: %w", err)
	}
	killRun, err := failurePoint(SysRRDegraded, true)
	if err != nil {
		return nil, fmt.Errorf("kill run: %w", err)
	}
	// One pooled median across both runs: the per-invocation cost is
	// identical by construction (same payload, same same-node kernel path,
	// cold channels in both), so pricing both makespans with the same
	// service time makes the throughput ratio purely count-driven —
	// busiest-healthy/busiest-killed — instead of letting the two runs'
	// median drift (machine-load jitter between runs) masquerade as
	// capacity loss.
	pooled := append(append([]time.Duration(nil), baseRun.lats...), killRun.lats...)
	sort.Slice(pooled, func(i, j int) bool { return pooled[i] < pooled[j] })
	median := pooled[len(pooled)/2]
	base, killed := baseRun.point(median), killRun.point(median)
	res.Points = append(res.Points, base, killed)
	doomedNote := killRun.note

	if base.RPS <= 0 || killed.RPS <= 0 {
		return nil, fmt.Errorf("degenerate throughput: healthy %.1f rps, killed %.1f rps", base.RPS, killed.RPS)
	}
	deg := 1 - killed.RPS/base.RPS
	res.Notes = append(res.Notes,
		fmt.Sprintf("aggregate throughput: %.1f rps healthy vs %.1f rps with 1/16 killed (%+.1f%%; bound -%.1f%%)",
			base.RPS, killed.RPS, -deg*100, failureDegradeBound*100),
		doomedNote)
	if deg > failureDegradeBound {
		return nil, fmt.Errorf("throughput degraded %.1f%% with 1/%d replicas killed — above the %.1f%% (2× capacity fraction) bound",
			deg*100, failureReplicas, failureDegradeBound*100)
	}
	return res, nil
}

// failureRun is one load's raw outcome: the busiest instance's invocation
// count (the capacity signal), every invocation's measured latency (the
// service-time samples Failure pools into one median) and the aggregate
// report.
type failureRun struct {
	system  string
	busiest int
	lats    []time.Duration
	total   roadrunner.Report
	note    string
}

// point prices the run's makespan at the given per-invocation service
// time: distinct instances are distinct shims executing in parallel, so
// the pool's makespan is the busiest instance's invocation count times the
// median invocation latency (count-driven, jitter-robust; see Failure).
func (r failureRun) point(median time.Duration) Point {
	pt := pointFromPublic(r.system, failureReplicas, r.total)
	pt.Latency = median
	if makespan := time.Duration(r.busiest) * median; makespan > 0 {
		pt.RPS = float64(len(r.lats)) / makespan.Seconds()
	}
	return pt
}

// failurePoint runs one 480-invocation load against fresh 16-replica source
// and target pools on a single node (every delivery a kernel-space
// transfer, so per-invocation cost is homogeneous and the makespan model is
// count-driven). Round-robin routing spreads invocations evenly; the health
// config takes a replica out on its first strike and never probes it back
// within the run, so the kill run serves the whole load on 15 survivors.
func failurePoint(system string, kill bool) (failureRun, error) {
	p := roadrunner.New(
		roadrunner.WithPlacement(roadrunner.PlacementRoundRobin),
		roadrunner.WithHealth(roadrunner.HealthConfig{FailureThreshold: 1, ProbeAfter: time.Hour}),
	)
	defer p.Close()
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "src", Replicas: failureReplicas, Node: "cloud"})
	if err != nil {
		return failureRun{}, err
	}
	dst, err := p.Deploy(roadrunner.FunctionSpec{Name: "dst", Replicas: failureReplicas, Node: "cloud"})
	if err != nil {
		return failureRun{}, err
	}
	if kill {
		// The doomed replica's first delivery faults two data-plane
		// syscalls in — mid-transfer, after the load has started.
		dst.Instance(failureDoomed).CrashAfter(2)
	}

	invocations := failureReplicas * failurePerReplica
	var (
		total roadrunner.Report
		count = make([]int, 2*failureReplicas)
		lats  = make([]time.Duration, 0, invocations)
	)
	for k := 0; k < invocations; k++ {
		// Per-call channels: excluding a replica shifts the router onto
		// source–target pairs the healthy run never formed, and cached-
		// channel misses on those fresh pairs would confound the capacity
		// comparison; with the cache off every invocation pays identical
		// setup in both runs.
		inv, err := p.Invoke(src, dst, failurePayload, roadrunner.WithChannelCache(false))
		if err != nil {
			return failureRun{}, fmt.Errorf("invocation %d: %w", k, err)
		}
		sum, err := inv.Target.Checksum(inv.Ref)
		if err != nil {
			return failureRun{}, err
		}
		if want := roadrunner.ExpectedChecksum(failurePayload); sum != want {
			return failureRun{}, fmt.Errorf("checksum %#x, want %#x at %s", sum, want, inv.Target.Name())
		}
		if err := inv.Target.Release(inv.Ref); err != nil {
			return failureRun{}, err
		}
		count[inv.Source.Index()]++
		count[failureReplicas+inv.Target.Index()]++
		lats = append(lats, inv.Report.Latency())
		if k == 0 {
			total = inv.Report
		} else {
			total = total.Merge(inv.Report)
		}
	}
	run := failureRun{system: system, lats: lats, total: total}
	for _, c := range count {
		run.busiest = max(run.busiest, c)
	}
	if kill {
		doomed := dst.Instance(failureDoomed)
		if got := doomed.Health(); got != roadrunner.HealthUnhealthy {
			return failureRun{}, fmt.Errorf("doomed replica health = %v, want unhealthy", got)
		}
		run.note = fmt.Sprintf("doomed replica %s: unhealthy after %d routed delivery(s); every invocation still completed on the 15 survivors",
			doomed.Name(), doomed.Invocations())
	}
	return run, nil
}
