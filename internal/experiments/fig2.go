package experiments

import (
	"fmt"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/baseline"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
)

// containerExecOverhead models per-invocation container process setup
// (exec + runtime hooks) that Wasm invocations do not pay.
const containerExecOverhead = 2 * time.Millisecond

// Fig2a regenerates the motivation measurement of Fig. 2a: cold start and
// execution latency for a no-I/O function ("Hello World") and a WASI-bound
// function ("Resize Image"), on containers vs Wasm, with artifact sizes.
//
// Point mapping: Latency = cold start, Breakdown.Compute = execution time,
// RAMMB = image/binary size in MB.
func Fig2a(opts Options) (*Result, error) {
	res := &Result{
		ID:     "fig2a",
		Mode:   "coldstart",
		Title:  "Cold start and execution latency, container vs Wasm",
		XLabel: "n/a",
		Notes: []string{
			"mapping: latency column = cold start; see notes for execution time",
		},
	}
	k := kernel.New("node")

	// Containers.
	cont := baseline.NewRunCFunction("cont", k, baseline.ContainerImageBytes, nil)
	defer cont.Close()
	// Wasm.
	wf, err := baseline.NewWasmEdgeFunction("wasm", k, guest.Module(), nil)
	if err != nil {
		return nil, err
	}
	defer wf.Close()

	// Hello World executions.
	swC := time.Now()
	cont.Hello()
	contHello := time.Since(swC) + containerExecOverhead
	swW := time.Now()
	if _, err := wf.Hello(); err != nil {
		return nil, err
	}
	wasmHello := time.Since(swW)

	// Resize Image executions (512x512 grayscale read through the host
	// filesystem / WASI respectively).
	const w, h = 512, 512
	img := guest.ReferenceProduce(w * h)
	swC = time.Now()
	cont.ResizeHalf(img, w, h)
	contResize := time.Since(swC) + containerExecOverhead
	wasmResize, err := wf.ResizeHalf(img, w, h)
	if err != nil {
		return nil, err
	}

	add := func(system string, cold, exec time.Duration, artifactBytes int64) {
		p := Point{System: system, Latency: cold, RAMMB: float64(artifactBytes) / MB}
		p.Breakdown.Compute = exec
		res.Points = append(res.Points, p)
		res.Notes = append(res.Notes, fmt.Sprintf("%s: cold=%.4gs exec=%.6gs artifact=%.2fMB",
			system, cold.Seconds(), exec.Seconds(), float64(artifactBytes)/MB))
	}
	add("Cont (Hello World)", cont.ColdStart(), contHello, baseline.ContainerImageBytes)
	add("Wasm (Hello World)", wf.ColdStart(), wasmHello, baseline.WasmBinaryBytes)
	add("Cont (Resize Image)", cont.ColdStart(), contResize, baseline.ContainerImageBytes)
	add("Wasm (Resize Image)", wf.ColdStart(), wasmResize, baseline.WasmBinaryBytes)
	return res, nil
}

// Fig2b regenerates the normalized I/O breakdown of Fig. 2b: the share of
// transfer vs serialization in an HTTP exchange, containers vs Wasm, across
// payload sizes (paper: 1, 60 and 100 MB).
func Fig2b(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	sizes := fig2bSizes(opts.SizesMB)
	res := &Result{
		ID:     "fig2b",
		Mode:   "intra-node",
		Title:  "Normalized transfer vs serialization share, container vs Wasm",
		XLabel: "size(MB)",
	}
	for _, sizeMB := range sizes {
		n := sizeMB * MB

		// Containers.
		{
			k := kernel.New("node")
			src := baseline.NewRunCFunction("a", k, baseline.ContainerImageBytes, nil)
			dst := baseline.NewRunCFunction("b", k, baseline.ContainerImageBytes, nil)
			src.Produce(n)
			_, rep, err := src.Transfer(dst, baseline.TransferEnv{Link: netsim.DefaultLoopback(), Flows: 1})
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pointFromMetrics("Cont", float64(sizeMB), rep))
			res.Notes = append(res.Notes, normNote("Cont", sizeMB, rep.Breakdown.Serialization, rep.Latency()))
			src.Close()
			dst.Close()
		}

		// Wasm.
		{
			k := kernel.New("node")
			src, err := baseline.NewWasmEdgeFunction("a", k, guest.Module(), nil)
			if err != nil {
				return nil, err
			}
			dst, err := baseline.NewWasmEdgeFunction("b", k, guest.Module(), nil)
			if err != nil {
				return nil, err
			}
			if err := src.Produce(n); err != nil {
				return nil, err
			}
			_, _, rep, err := src.Transfer(dst, baseline.TransferEnv{Link: netsim.DefaultLoopback(), Flows: 1})
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pointFromMetrics("Wasm", float64(sizeMB), rep))
			res.Notes = append(res.Notes, normNote("Wasm", sizeMB, rep.Breakdown.Serialization, rep.Latency()))
			src.Close()
			dst.Close()
		}
	}
	return res, nil
}

func normNote(system string, sizeMB int, ser, total time.Duration) string {
	share := 0.0
	if total > 0 {
		share = float64(ser) / float64(total) * 100
	}
	return fmt.Sprintf("%s %dMB: serialization=%.1f%% transfer=%.1f%%", system, sizeMB, share, 100-share)
}

// fig2bSizes picks up to three representative sizes from the sweep axis.
func fig2bSizes(sizes []int) []int {
	switch len(sizes) {
	case 0:
		return []int{1, 4, 16}
	case 1, 2, 3:
		return sizes
	default:
		return []int{sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1]}
	}
}
