package experiments

import (
	"fmt"
)

// Fig6 regenerates the inter-node transfer breakdown at a fixed payload
// (Fig. 6a–c; paper: 100 MB): per-system latency components (transfer,
// serialization, Wasm VM I/O, network), the serialization-only comparison,
// and the normalized latency distribution.
func Fig6(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := opts.Fig6PayloadMB * MB
	res := &Result{
		ID:     "fig6",
		Mode:   "inter-node",
		Title:  fmt.Sprintf("Inter-node transfer breakdown, %d MB payload", opts.Fig6PayloadMB),
		XLabel: "size(MB)",
	}
	pts, err := interNodePoints(float64(opts.Fig6PayloadMB), n, 1)
	if err != nil {
		return nil, err
	}
	res.Points = pts

	// Fig. 6a: component decomposition.
	for _, p := range pts {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"components %s: transfer=%.4gs serialization=%.4gs wasmIO=%.4gs network=%.4gs",
			p.System,
			p.Breakdown.Transfer.Seconds(),
			p.Breakdown.Serialization.Seconds(),
			p.Breakdown.WasmIO.Seconds(),
			p.Breakdown.Network.Seconds()))
	}

	// Fig. 6c: normalized non-network latency share, showing where each
	// system spends its CPU-side time (the paper normalizes against total
	// latency; network dominates all three, so the CPU-side distribution
	// carries the signal).
	for _, p := range pts {
		total := p.Latency
		if total <= 0 {
			continue
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"normalized %s: serialization=%.2f%% wasmIO=%.2f%% transfer=%.2f%% network=%.2f%%",
			p.System,
			pct(p.Breakdown.Serialization, total),
			pct(p.Breakdown.WasmIO, total),
			pct(p.Breakdown.Transfer, total),
			pct(p.Breakdown.Network, total)))
	}

	// Fig. 6b headline: serialization overhead reduction.
	by := map[string]int{}
	for i, p := range pts {
		by[p.System] = i
	}
	if rr, ok := by[SysRRNetwork]; ok {
		if w, ok := by[SysWasmEdge]; ok {
			res.Notes = append(res.Notes, headline("serialization overhead",
				SysRRNetwork, SysWasmEdge, pts[rr].SerLatency, pts[w].SerLatency))
		}
		if r, ok := by[SysRunC]; ok {
			res.Notes = append(res.Notes, headline("serialization overhead",
				SysRRNetwork, SysRunC, pts[rr].SerLatency, pts[r].SerLatency))
			res.Notes = append(res.Notes, headline("total latency",
				SysRRNetwork, SysRunC, pts[rr].Latency, pts[r].Latency))
		}
	}
	return res, nil
}

func pct(part, total interface{ Seconds() float64 }) float64 {
	t := total.Seconds()
	if t == 0 {
		return 0
	}
	return part.Seconds() / t * 100
}
