package experiments

import (
	"runtime"
	"testing"
)

func TestHotpathWorkerAxis(t *testing.T) {
	cases := []struct {
		maxW int
		want []int
	}{
		{1, []int{1}},
		{2, []int{1, 2}},
		{6, []int{1, 2, 4, 6}},
		{8, []int{1, 2, 4, 8}},
		{16, []int{1, 2, 4, 8, 16}},
	}
	for _, c := range cases {
		got := hotpathWorkerAxis(c.maxW)
		if len(got) != len(c.want) {
			t.Fatalf("axis(%d) = %v, want %v", c.maxW, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("axis(%d) = %v, want %v", c.maxW, got, c.want)
			}
		}
	}
}

// TestHotpathShape runs the sweep and pins its structure: both systems
// measured at every worker count up to GOMAXPROCS, every point with
// positive throughput. The 5x speedup bound is enforced inside Hotpath
// itself when the machine has >= 8 cores, so a passing run on such a
// machine is also the acceptance check.
func TestHotpathShape(t *testing.T) {
	res, err := Hotpath(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	axis := hotpathWorkerAxis(runtime.GOMAXPROCS(0))
	if len(res.Points) != 2*len(axis) {
		t.Fatalf("got %d points, want %d (2 systems x %d worker counts)", len(res.Points), 2*len(axis), len(axis))
	}
	for _, w := range axis {
		pts := bySystem(res.Points, float64(w))
		for _, sys := range []string{SysSharded, SysSingleQueue} {
			pt, ok := pts[sys]
			if !ok {
				t.Fatalf("workers=%d: missing system %q", w, sys)
			}
			if pt.RPS <= 0 || pt.Latency <= 0 {
				t.Fatalf("workers=%d %s: degenerate point %+v", w, sys, pt)
			}
		}
	}
	if len(res.Notes) == 0 {
		t.Fatal("expected a speedup note")
	}
}
