package experiments

import (
	"fmt"
	"time"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/baseline"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
)

// paperLink reproduces the testbed network: 100 Mbps shaped bandwidth with a
// stable 1 ms RTT between the two nodes (§6.2).
func paperLink() *netsim.Link {
	return netsim.NewLink(100*netsim.Mbps, time.Millisecond)
}

// Fig8 regenerates the inter-node payload sweep (Fig. 8a–h): chained
// functions a→b on two nodes joined by the 100 Mbps edge–cloud link, across
// RoadRunner (Network), RunC and Wasmedge.
func Fig8(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		ID:     "fig8",
		Mode:   "inter-node",
		Title:  "Inter-node latency/throughput/CPU/RAM for varying payload sizes",
		XLabel: "size(MB)",
	}
	for _, sizeMB := range opts.SizesMB {
		n := sizeMB * MB
		pts, err := interNodePoints(float64(sizeMB), n, 1)
		if err != nil {
			return nil, fmt.Errorf("size %d MB: %w", sizeMB, err)
		}
		res.Points = append(res.Points, pts...)
	}
	res.Notes = append(res.Notes, fig8Headlines(res.Points)...)
	return res, nil
}

// interNodePoints measures one payload size across the three inter-node
// systems on fresh two-node deployments.
func interNodePoints(x float64, n, flows int) ([]Point, error) {
	var points []Point

	// RoadRunner (Network).
	{
		p := roadrunner.New(roadrunner.WithLink(100*roadrunner.Mbps, time.Millisecond))
		a, err := p.Deploy(roadrunner.FunctionSpec{Name: "a", Node: "edge"})
		if err != nil {
			return nil, err
		}
		b, err := p.Deploy(roadrunner.FunctionSpec{Name: "b", Node: "cloud"})
		if err != nil {
			return nil, err
		}
		if err := a.Produce(n); err != nil {
			return nil, err
		}
		if err := warmupRR(p, a, b); err != nil {
			return nil, err
		}
		ref, rep, err := p.Transfer(a, b, roadrunner.WithFlows(flows))
		if err != nil {
			return nil, err
		}
		if err := verifyChecksum(b, ref, n); err != nil {
			return nil, err
		}
		points = append(points, pointFromPublic(SysRRNetwork, x, rep))
		p.Close()
	}

	// RunC over the inter-node link.
	{
		k1, k2 := kernel.New("edge"), kernel.New("cloud")
		src := baseline.NewRunCFunction("a", k1, baseline.ContainerImageBytes, nil)
		dst := baseline.NewRunCFunction("b", k2, baseline.ContainerImageBytes, nil)
		src.Produce(n)
		if _, _, err := src.Transfer(dst, baseline.TransferEnv{Link: paperLink(), Flows: flows}); err != nil {
			return nil, err
		}
		body, rep, err := src.Transfer(dst, baseline.TransferEnv{Link: paperLink(), Flows: flows})
		if err != nil {
			return nil, err
		}
		if dst.Checksum(body) != guest.ReferenceChecksum(guest.ReferenceProduce(n)) {
			return nil, fmt.Errorf("runc payload corrupted")
		}
		points = append(points, pointFromMetrics(SysRunC, x, rep))
		src.Close()
		dst.Close()
	}

	// WasmEdge over the inter-node link.
	{
		k1, k2 := kernel.New("edge"), kernel.New("cloud")
		src, err := baseline.NewWasmEdgeFunction("a", k1, guest.Module(), nil)
		if err != nil {
			return nil, err
		}
		dst, err := baseline.NewWasmEdgeFunction("b", k2, guest.Module(), nil)
		if err != nil {
			return nil, err
		}
		if err := src.Produce(n); err != nil {
			return nil, err
		}
		if wp, _, _, err := src.Transfer(dst, baseline.TransferEnv{Link: paperLink(), Flows: flows}); err != nil {
			return nil, err
		} else if err := dst.Release(wp); err != nil {
			return nil, err
		}
		ptr, m, rep, err := src.Transfer(dst, baseline.TransferEnv{Link: paperLink(), Flows: flows})
		if err != nil {
			return nil, err
		}
		sum, err := dst.Checksum(ptr, m)
		if err != nil {
			return nil, err
		}
		if sum != guest.ReferenceChecksum(guest.ReferenceProduce(n)) {
			return nil, fmt.Errorf("wasmedge payload corrupted")
		}
		points = append(points, pointFromMetrics(SysWasmEdge, x, rep))
		src.Close()
		dst.Close()
	}

	return points, nil
}

func fig8Headlines(points []Point) []string {
	last := map[string]Point{}
	for _, p := range points {
		last[p.System] = p
	}
	var notes []string
	if rr, ok := last[SysRRNetwork]; ok {
		if w, ok := last[SysWasmEdge]; ok {
			notes = append(notes,
				headline("total latency", SysRRNetwork, SysWasmEdge, rr.Latency, w.Latency),
				headline("serialization", SysRRNetwork, SysWasmEdge, rr.SerLatency, w.SerLatency))
		}
		if r, ok := last[SysRunC]; ok {
			notes = append(notes,
				headline("total latency", SysRRNetwork, SysRunC, rr.Latency, r.Latency),
				headline("serialization", SysRRNetwork, SysRunC, rr.SerLatency, r.SerLatency))
		}
	}
	return notes
}
