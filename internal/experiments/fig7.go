package experiments

import (
	"fmt"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/baseline"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
)

// Fig7 regenerates the intra-node payload sweep (Fig. 7a–h): two chained
// functions a→b on one node exchanging payloads of increasing size, across
// RoadRunner (User space), RoadRunner (Kernel space), RunC and Wasmedge.
func Fig7(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{
		ID:     "fig7",
		Mode:   "intra-node",
		Title:  "Intra-node latency/throughput/CPU/RAM for varying payload sizes",
		XLabel: "size(MB)",
	}

	for _, sizeMB := range opts.SizesMB {
		n := sizeMB * MB
		for run := 0; run < opts.Runs; run++ {
			pts, err := intraNodePoints(float64(sizeMB), n)
			if err != nil {
				return nil, fmt.Errorf("size %d MB: %w", sizeMB, err)
			}
			if run == 0 {
				res.Points = append(res.Points, pts...)
			} else {
				base := len(res.Points) - len(pts)
				for i, p := range pts {
					res.Points[base+i] = averagePoints([]Point{res.Points[base+i], p})
				}
			}
		}
	}
	res.Notes = append(res.Notes, fig7Headlines(res.Points)...)
	return res, nil
}

// intraNodePoints measures one payload size across the four intra-node
// systems, each on a fresh deployment.
func intraNodePoints(xMB float64, n int) ([]Point, error) {
	var points []Point

	// RoadRunner (User space): both functions in one Wasm VM.
	{
		p := roadrunner.New(roadrunner.WithNodes("node"))
		a, err := p.Deploy(roadrunner.FunctionSpec{Name: "a", Node: "node"})
		if err != nil {
			return nil, err
		}
		b, err := p.Deploy(roadrunner.FunctionSpec{Name: "b", Node: "node", ShareVMWith: a})
		if err != nil {
			return nil, err
		}
		if err := a.Produce(n); err != nil {
			return nil, err
		}
		if err := warmupRR(p, a, b); err != nil {
			return nil, err
		}
		ref, rep, err := p.Transfer(a, b)
		if err != nil {
			return nil, err
		}
		if err := verifyChecksum(b, ref, n); err != nil {
			return nil, err
		}
		points = append(points, pointFromPublic(SysRRUser, xMB, rep))
		p.Close()
	}

	// RoadRunner (Kernel space): two sandboxes, one node.
	{
		p := roadrunner.New(roadrunner.WithNodes("node"))
		a, err := p.Deploy(roadrunner.FunctionSpec{Name: "a", Node: "node"})
		if err != nil {
			return nil, err
		}
		b, err := p.Deploy(roadrunner.FunctionSpec{Name: "b", Node: "node"})
		if err != nil {
			return nil, err
		}
		if err := a.Produce(n); err != nil {
			return nil, err
		}
		if err := warmupRR(p, a, b); err != nil {
			return nil, err
		}
		ref, rep, err := p.Transfer(a, b)
		if err != nil {
			return nil, err
		}
		if err := verifyChecksum(b, ref, n); err != nil {
			return nil, err
		}
		points = append(points, pointFromPublic(SysRRKernel, xMB, rep))
		p.Close()
	}

	// RunC: containers over loopback HTTP.
	{
		k := kernel.New("node")
		src := baseline.NewRunCFunction("a", k, baseline.ContainerImageBytes, nil)
		dst := baseline.NewRunCFunction("b", k, baseline.ContainerImageBytes, nil)
		src.Produce(n)
		if _, _, err := src.Transfer(dst, baseline.TransferEnv{Link: netsim.DefaultLoopback(), Flows: 1}); err != nil {
			return nil, err
		}
		body, rep, err := src.Transfer(dst, baseline.TransferEnv{Link: netsim.DefaultLoopback(), Flows: 1})
		if err != nil {
			return nil, err
		}
		if dst.Checksum(body) != guest.ReferenceChecksum(guest.ReferenceProduce(n)) {
			return nil, fmt.Errorf("runc payload corrupted at %d bytes", n)
		}
		points = append(points, pointFromMetrics(SysRunC, xMB, rep))
		src.Close()
		dst.Close()
	}

	// WasmEdge: Wasm sandboxes over loopback HTTP through WASI.
	{
		k := kernel.New("node")
		src, err := baseline.NewWasmEdgeFunction("a", k, guest.Module(), nil)
		if err != nil {
			return nil, err
		}
		dst, err := baseline.NewWasmEdgeFunction("b", k, guest.Module(), nil)
		if err != nil {
			return nil, err
		}
		if err := src.Produce(n); err != nil {
			return nil, err
		}
		if wp, _, _, err := src.Transfer(dst, baseline.TransferEnv{Link: netsim.DefaultLoopback(), Flows: 1}); err != nil {
			return nil, err
		} else if err := dst.Release(wp); err != nil {
			return nil, err
		}
		ptr, m, rep, err := src.Transfer(dst, baseline.TransferEnv{Link: netsim.DefaultLoopback(), Flows: 1})
		if err != nil {
			return nil, err
		}
		sum, err := dst.Checksum(ptr, m)
		if err != nil {
			return nil, err
		}
		if sum != guest.ReferenceChecksum(guest.ReferenceProduce(n)) {
			return nil, fmt.Errorf("wasmedge payload corrupted at %d bytes", n)
		}
		points = append(points, pointFromMetrics(SysWasmEdge, xMB, rep))
		src.Close()
		dst.Close()
	}

	return points, nil
}

func verifyChecksum(f *roadrunner.Function, ref roadrunner.DataRef, n int) error {
	sum, err := f.Checksum(ref)
	if err != nil {
		return err
	}
	if sum != roadrunner.ExpectedChecksum(n) {
		return fmt.Errorf("payload corrupted at %d bytes", n)
	}
	return nil
}

// fig7Headlines extracts the paper's §6.3 intra-node claims from the
// measured points (largest size).
func fig7Headlines(points []Point) []string {
	last := map[string]Point{}
	for _, p := range points {
		last[p.System] = p // points are ordered by size; keep the largest
	}
	var notes []string
	if u, ok := last[SysRRUser]; ok {
		if w, ok := last[SysWasmEdge]; ok {
			notes = append(notes, headline("total latency", SysRRUser, SysWasmEdge, u.Latency, w.Latency))
		}
		if r, ok := last[SysRunC]; ok {
			notes = append(notes, headline("total latency", SysRRUser, SysRunC, u.Latency, r.Latency))
		}
	}
	if k, ok := last[SysRRKernel]; ok {
		if w, ok := last[SysWasmEdge]; ok {
			notes = append(notes, headline("total latency", SysRRKernel, SysWasmEdge, k.Latency, w.Latency))
			notes = append(notes, headline("serialization", SysRRKernel, SysWasmEdge, k.SerLatency, w.SerLatency))
		}
	}
	return notes
}

// warmupRR performs one untimed transfer so first-touch costs (linear-memory
// growth, page-pool population) do not pollute the measured run — the
// equivalent of the paper's repeated-run methodology (§6.2: 10 runs, mean).
func warmupRR(p *roadrunner.Platform, a, b *roadrunner.Function) error {
	ref, _, err := p.Transfer(a, b)
	if err != nil {
		return err
	}
	return b.Release(ref)
}
