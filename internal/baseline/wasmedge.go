package baseline

import (
	"errors"
	"fmt"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/abi"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasi"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasm"
)

// WasmEdgeFunction is a Wasm serverless function on the state-of-the-art
// data path (§2.2, Fig. 1a): payloads are serialized inside the sandbox and
// pushed through WASI socket calls, paying the boundary copies and context
// switches the paper measures. One VM per sandbox (no Roadrunner shim
// mediation).
type WasmEdgeFunction struct {
	name      string
	proc      *kernel.Proc
	acct      *metrics.Account
	now       func() time.Time
	inst      *wasm.Instance
	view      *abi.View
	wasiHost  *wasi.Host
	coldStart time.Duration
	out       struct{ ptr, n uint32 }
}

// NewWasmEdgeFunction provisions a Wasm-runtime function: modeled binary
// pull + measured decode/instantiate. now may be nil.
func NewWasmEdgeFunction(name string, k *kernel.Kernel, module []byte, now func() time.Time) (*WasmEdgeFunction, error) {
	if now == nil {
		now = time.Now
	}
	sw := metrics.NewStopwatch(now)
	acct := &metrics.Account{}
	proc := k.NewProc(name, acct)
	f := &WasmEdgeFunction{name: name, proc: proc, acct: acct, now: now}
	f.wasiHost = wasi.NewHost(proc, acct)

	imports := wasm.Imports{}
	f.wasiHost.AddImports(imports)
	imports.Add(abi.ImportModule, abi.ImportSendToHost, abi.SendToHostImport(func(ptr, n uint32) {
		f.out.ptr, f.out.n = ptr, n
	}))
	m, err := wasm.Decode(module)
	if err != nil {
		return nil, fmt.Errorf("wasmedge %s: %w", name, err)
	}
	inst, err := wasm.Instantiate(m, imports, &wasm.Config{
		MemoryResizeHook: func(delta int64) { acct.Allocate(delta) },
	})
	if err != nil {
		return nil, fmt.Errorf("wasmedge %s: %w", name, err)
	}
	f.inst = inst
	view, err := abi.NewView(inst, acct)
	if err != nil {
		return nil, fmt.Errorf("wasmedge %s: %w", name, err)
	}
	f.view = view
	f.coldStart = PullTime(WasmBinaryBytes) + WasmShimInitTime + sw.Lap()
	return f, nil
}

// Name returns the function name.
func (f *WasmEdgeFunction) Name() string { return f.name }

// Account returns the sandbox resource account.
func (f *WasmEdgeFunction) Account() *metrics.Account { return f.acct }

// WASI exposes the function's WASI host (to preload files).
func (f *WasmEdgeFunction) WASI() *wasi.Host { return f.wasiHost }

// ColdStart reports provisioning time.
func (f *WasmEdgeFunction) ColdStart() time.Duration { return f.coldStart }

// Close tears the sandbox down.
func (f *WasmEdgeFunction) Close() { f.proc.CloseAll() }

// call charges guest execution to user CPU.
func (f *WasmEdgeFunction) call(name string, args ...uint64) ([]uint64, error) {
	sw := metrics.NewStopwatch(f.now)
	res, err := f.inst.Call(name, args...)
	f.acct.CPU(metrics.User, sw.Lap())
	return res, err
}

// Produce runs the guest payload generator.
func (f *WasmEdgeFunction) Produce(n int) error {
	sw := metrics.NewStopwatch(f.now)
	ptr, m, err := f.view.CallPacked(guest.ExportProduce, uint64(n))
	f.acct.CPU(metrics.User, sw.Lap())
	if err != nil {
		return err
	}
	f.out.ptr, f.out.n = ptr, m
	return nil
}

// Checksum digests a delivered region with the guest consumer.
func (f *WasmEdgeFunction) Checksum(ptr, n uint32) (uint64, error) {
	res, err := f.call(guest.ExportConsume, uint64(ptr), uint64(n))
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// Hello runs the trivial guest of Fig. 2a.
func (f *WasmEdgeFunction) Hello() (uint64, error) {
	res, err := f.call(guest.ExportHello)
	if err != nil {
		return 0, err
	}
	return res[0], nil
}

// ResizeHalf runs the guest image kernel after loading the input image via
// WASI fd_read (the WASI-bound workload of Fig. 2a).
func (f *WasmEdgeFunction) ResizeHalf(image []byte, w, h int) (time.Duration, error) {
	f.wasiHost.Files[3] = image
	sw := metrics.NewStopwatch(f.now)
	res, err := f.inst.Call(guest.ExportFillFromFile, 3, uint64(len(image)))
	if err != nil {
		return 0, err
	}
	ptr, _ := abi.Unpack(res[0])
	if _, err := f.inst.Call(guest.ExportResizeHalf, uint64(ptr), uint64(w), uint64(h)); err != nil {
		return 0, err
	}
	d := sw.Lap()
	f.acct.CPU(metrics.User, d)
	return d, nil
}

// Release frees a guest allocation (for iterated benchmarks).
func (f *WasmEdgeFunction) Release(ptr uint32) error {
	return f.view.Deallocate(ptr)
}

// Transfer is the WasmEdge baseline data path (Fig. 1a on Wasm): serialize
// inside the source sandbox, send through WASI sockets, receive through WASI
// sockets, deserialize inside the target sandbox.
func (f *WasmEdgeFunction) Transfer(dst *WasmEdgeFunction, env TransferEnv) (ptr, n uint32, report metrics.TransferReport, err error) {
	beforeSrc := f.acct.Snapshot()
	beforeDst := dst.acct.Snapshot()
	fail := func(e error) (uint32, uint32, metrics.TransferReport, error) {
		return 0, 0, metrics.TransferReport{}, e
	}

	// In-sandbox serialization (the dominant Wasm cost of §2.2).
	swSer := metrics.NewStopwatch(f.now)
	res, err := f.inst.Call(guest.ExportSerialize, uint64(f.out.ptr), uint64(f.out.n))
	if err != nil {
		return fail(fmt.Errorf("wasmedge serialize: %w", err))
	}
	encPtr, encLen := abi.Unpack(res[0])
	serT := swSer.Lap()
	f.acct.CPU(metrics.User, serT)

	// WASI socket send: staging copy + kernel copy + syscalls.
	swT := metrics.NewStopwatch(f.now)
	cfd, sfd := kernel.Connect(f.proc, dst.proc)
	res, err = f.inst.Call(guest.ExportSockSendAll, uint64(cfd), uint64(encPtr), uint64(encLen))
	if err != nil {
		return fail(fmt.Errorf("wasmedge send: %w", err))
	}
	if uint32(res[0]) != wasi.ErrnoSuccess {
		return fail(fmt.Errorf("wasmedge send errno %d", res[0]))
	}
	sendT := swT.Lap()
	f.acct.CPU(metrics.Kernel, sendT)

	// WASI socket receive into a guest buffer.
	swR := metrics.NewStopwatch(dst.now)
	dstPtr, err := dst.view.Allocate(encLen)
	if err != nil {
		return fail(err)
	}
	// Failures past the receive allocation rewind the destination's bump
	// heap (the staging buffer is its top allocation) before surfacing, so
	// an aborted baseline transfer does not strand the buffer.
	abort := func(e error) (uint32, uint32, metrics.TransferReport, error) {
		if derr := dst.view.Deallocate(dstPtr); derr != nil {
			e = errors.Join(e, derr)
		}
		return fail(e)
	}
	res, err = dst.inst.Call(guest.ExportSockRecvExact, uint64(sfd), uint64(dstPtr), uint64(encLen))
	if err != nil {
		return abort(fmt.Errorf("wasmedge recv: %w", err))
	}
	if uint32(res[0]) != 0 {
		return abort(fmt.Errorf("wasmedge recv errno %d", res[0]))
	}
	recvT := swR.Lap()
	dst.acct.CPU(metrics.Kernel, recvT)

	// In-sandbox deserialization.
	swDe := metrics.NewStopwatch(dst.now)
	res, err = dst.inst.Call(guest.ExportDeserialize, uint64(dstPtr), uint64(encLen))
	if err != nil {
		return abort(fmt.Errorf("wasmedge deserialize: %w", err))
	}
	decPtr, decLen := abi.Unpack(res[0])
	deT := swDe.Lap()
	dst.acct.CPU(metrics.User, deT)

	_ = f.proc.Close(cfd)
	_ = dst.proc.Close(sfd)
	dst.out.ptr, dst.out.n = decPtr, decLen

	usage := f.acct.Snapshot().Sub(beforeSrc).Add(dst.acct.Snapshot().Sub(beforeDst))
	report = metrics.TransferReport{
		Bytes: int64(encLen),
		Breakdown: metrics.Breakdown{
			Serialization: serT + deT,
			Transfer:      sendT + recvT + f.proc.Kernel().SyscallTime(usage.Syscalls),
			Network:       env.networkTime(int64(encLen)),
		},
		Usage: usage,
		Mode:  "wasmedge-http",
	}
	// Re-verified with the interprocedural analyzer: the suppressed path is
	// exactly this success return, which hands out decPtr while dstPtr's
	// staging buffer stays allocated. No flow analysis can prove this safe —
	// the argument rests on bump-heap address ordering (decPtr sits above
	// dstPtr, so a rewind would free the result), which lives outside the
	// analyzer's model. The stagingGarbage fixture in regionrelease's
	// testdata pins this exact shape as a true diagnostic.
	//roadvet:ignore regionrelease the decoded output sits above the encoded staging buffer in the guest bump heap, so rewinding it would free the result; the buffer is reclaimed with the instance, mirroring the baseline's in-sandbox garbage
	return decPtr, decLen, report, nil
}
