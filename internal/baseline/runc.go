package baseline

import (
	"bufio"
	"fmt"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/minihttp"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/serial"
)

// RunCFunction is a native container function: the paper's upper performance
// bound (§6.1). It executes at host speed inside an OCI sandbox (a simulated
// process with cgroup-style accounting) and exchanges data over HTTP with
// the internal/serial codec.
type RunCFunction struct {
	name      string
	proc      *kernel.Proc
	acct      *metrics.Account
	now       func() time.Time
	coldStart time.Duration
	output    []byte
}

// NewRunCFunction provisions a container function on the given kernel. Cold
// start combines the modeled image pull/extract + RunC provisioning with the
// (measured) process setup. now may be nil (time.Now).
func NewRunCFunction(name string, k *kernel.Kernel, imageBytes int64, now func() time.Time) *RunCFunction {
	if now == nil {
		now = time.Now
	}
	sw := metrics.NewStopwatch(now)
	acct := &metrics.Account{}
	proc := k.NewProc(name, acct)
	f := &RunCFunction{name: name, proc: proc, acct: acct, now: now}
	f.coldStart = PullTime(imageBytes) + RunCInitTime + sw.Lap()
	return f
}

// Name returns the function name.
func (f *RunCFunction) Name() string { return f.name }

// Account returns the sandbox resource account.
func (f *RunCFunction) Account() *metrics.Account { return f.acct }

// Proc exposes the sandbox process.
func (f *RunCFunction) Proc() *kernel.Proc { return f.proc }

// ColdStart reports sandbox provisioning time (modeled pull + measured
// setup).
func (f *RunCFunction) ColdStart() time.Duration { return f.coldStart }

// Close tears the sandbox down.
func (f *RunCFunction) Close() { f.proc.CloseAll() }

// Produce generates the same deterministic payload the Wasm guests produce,
// at native speed, and tracks its memory.
func (f *RunCFunction) Produce(n int) {
	sw := metrics.NewStopwatch(f.now)
	f.output = guest.ReferenceProduce(n)
	f.acct.Allocate(int64(n))
	f.acct.CPU(metrics.User, sw.Lap())
}

// Output returns the function's current payload.
func (f *RunCFunction) Output() []byte { return f.output }

// SetOutput installs a received payload as the next hop's input.
func (f *RunCFunction) SetOutput(b []byte) { f.output = b }

// Checksum computes the shared reference digest at native speed.
func (f *RunCFunction) Checksum(data []byte) uint64 {
	sw := metrics.NewStopwatch(f.now)
	h := guest.ReferenceChecksum(data)
	f.acct.CPU(metrics.User, sw.Lap())
	return h
}

// Hello is the trivial no-I/O workload of Fig. 2a.
func (f *RunCFunction) Hello() int {
	sw := metrics.NewStopwatch(f.now)
	v := 42
	f.acct.CPU(metrics.User, sw.Lap())
	return v
}

// ResizeHalf is the native-speed counterpart of the guest image kernel.
func (f *RunCFunction) ResizeHalf(src []byte, w, h int) []byte {
	sw := metrics.NewStopwatch(f.now)
	out := guest.ReferenceResizeHalf(src, w, h)
	f.acct.CPU(metrics.User, sw.Lap())
	return out
}

// Transfer moves the source's output to dst over HTTP with serialization —
// the standard container data path of Fig. 1a. The returned report
// decomposes latency exactly as the Roadrunner paths do so the experiment
// figures can compare them component by component.
func (f *RunCFunction) Transfer(dst *RunCFunction, env TransferEnv) ([]byte, metrics.TransferReport, error) {
	beforeSrc := f.acct.Snapshot()
	beforeDst := dst.acct.Snapshot()

	// Serialize (source, user space).
	swSer := metrics.NewStopwatch(f.now)
	records := []serial.Record{{Key: []byte("payload"), Value: f.output}}
	body := serial.Encode(records)
	f.acct.Copy(metrics.User, len(body))
	f.acct.Allocate(int64(len(body)))
	serT := swSer.Lap()
	f.acct.CPU(metrics.User, serT)

	// HTTP POST through the kernel.
	swT := metrics.NewStopwatch(f.now)
	cfd, sfd := kernel.Connect(f.proc, dst.proc)
	srcStream := kernel.NewStream(f.proc, cfd)
	if err := minihttp.WriteRequest(srcStream, &minihttp.Request{
		Method: "POST",
		Path:   "/invoke/" + dst.name,
		Header: map[string]string{"Content-Type": "application/rrs1"},
		Body:   body,
	}); err != nil {
		return nil, metrics.TransferReport{}, fmt.Errorf("runc http send: %w", err)
	}
	sendT := swT.Lap()
	f.acct.CPU(metrics.Kernel, sendT)

	// Receive + parse on the target.
	swR := metrics.NewStopwatch(dst.now)
	dstStream := kernel.NewStream(dst.proc, sfd)
	req, err := minihttp.ReadRequest(bufio.NewReaderSize(dstStream, 64<<10))
	if err != nil {
		return nil, metrics.TransferReport{}, fmt.Errorf("runc http recv: %w", err)
	}
	dst.acct.Allocate(int64(len(req.Body)))
	recvT := swR.Lap()
	dst.acct.CPU(metrics.Kernel, recvT)

	// Deserialize (target, user space).
	swDe := metrics.NewStopwatch(dst.now)
	decoded, err := serial.Decode(req.Body)
	if err != nil {
		return nil, metrics.TransferReport{}, fmt.Errorf("runc decode: %w", err)
	}
	dst.acct.Copy(metrics.User, len(decoded[0].Value))
	deT := swDe.Lap()
	dst.acct.CPU(metrics.User, deT)

	_ = f.proc.Close(cfd)
	_ = dst.proc.Close(sfd)
	f.acct.Allocate(int64(-len(body)))

	usage := f.acct.Snapshot().Sub(beforeSrc).Add(dst.acct.Snapshot().Sub(beforeDst))
	transfer := sendT + recvT + f.proc.Kernel().SyscallTime(usage.Syscalls)
	report := metrics.TransferReport{
		Bytes: int64(len(body)),
		Breakdown: metrics.Breakdown{
			Serialization: serT + deT,
			Transfer:      transfer,
			Network:       env.networkTime(int64(len(body))),
		},
		Usage: usage,
		Mode:  "runc-http",
	}
	return decoded[0].Value, report, nil
}
