package baseline_test

import (
	"testing"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/baseline"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
)

func TestPullTimeScalesWithSize(t *testing.T) {
	small := baseline.PullTime(1 << 20)
	big := baseline.PullTime(100 << 20)
	if big <= small {
		t.Fatalf("pull time not monotone: %v vs %v", small, big)
	}
	// 77 MB container image pull+extract lands in the seconds range.
	cont := baseline.PullTime(baseline.ContainerImageBytes)
	if cont < 500*time.Millisecond || cont > 10*time.Second {
		t.Fatalf("container pull = %v", cont)
	}
}

func TestRunCColdStartExceedsWasm(t *testing.T) {
	k := kernel.New("n")
	rc := baseline.NewRunCFunction("c", k, baseline.ContainerImageBytes, nil)
	defer rc.Close()
	we, err := baseline.NewWasmEdgeFunction("w", k, guest.Module(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer we.Close()
	if rc.ColdStart() <= we.ColdStart() {
		t.Fatalf("container cold start %v <= wasm %v", rc.ColdStart(), we.ColdStart())
	}
}

func TestRunCTransferDeliversPayload(t *testing.T) {
	k := kernel.New("n")
	src := baseline.NewRunCFunction("a", k, baseline.ContainerImageBytes, nil)
	dst := baseline.NewRunCFunction("b", k, baseline.ContainerImageBytes, nil)
	defer src.Close()
	defer dst.Close()

	const n = 250_000
	src.Produce(n)
	got, report, err := src.Transfer(dst, baseline.TransferEnv{Link: netsim.DefaultLoopback(), Flows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dst.Checksum(got) != guest.ReferenceChecksum(guest.ReferenceProduce(n)) {
		t.Fatal("payload corrupted over RunC HTTP path")
	}
	if report.Mode != "runc-http" {
		t.Fatalf("mode = %s", report.Mode)
	}
	// The HTTP+codec path must pay serialization time and kernel copies.
	if report.Breakdown.Serialization <= 0 {
		t.Fatal("serialization not measured")
	}
	if report.Usage.KernelCopyBytes < 2*n {
		t.Fatalf("kernel copies = %d, want >= %d", report.Usage.KernelCopyBytes, 2*n)
	}
	// Wire bytes exceed the raw payload (framing + escaping).
	if report.Bytes <= n {
		t.Fatalf("wire bytes = %d", report.Bytes)
	}
}

func TestRunCHello(t *testing.T) {
	k := kernel.New("n")
	f := baseline.NewRunCFunction("c", k, baseline.ContainerImageBytes, nil)
	defer f.Close()
	if f.Hello() != 42 {
		t.Fatal("hello != 42")
	}
}

func TestRunCResizeMatchesGuest(t *testing.T) {
	k := kernel.New("n")
	f := baseline.NewRunCFunction("c", k, baseline.ContainerImageBytes, nil)
	defer f.Close()
	src := guest.ReferenceProduce(64 * 64)
	out := f.ResizeHalf(src, 64, 64)
	if len(out) != 32*32 {
		t.Fatalf("resize output %d bytes", len(out))
	}
}

func TestWasmEdgeTransferDeliversPayload(t *testing.T) {
	k := kernel.New("n")
	src, err := baseline.NewWasmEdgeFunction("a", k, guest.Module(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := baseline.NewWasmEdgeFunction("b", k, guest.Module(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	const n = 120_000
	if err := src.Produce(n); err != nil {
		t.Fatal(err)
	}
	ptr, m, report, err := src.Transfer(dst, baseline.TransferEnv{Link: netsim.DefaultLoopback(), Flows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if int(m) != n {
		t.Fatalf("delivered %d bytes, want %d", m, n)
	}
	sum, err := dst.Checksum(ptr, m)
	if err != nil {
		t.Fatal(err)
	}
	if sum != guest.ReferenceChecksum(guest.ReferenceProduce(n)) {
		t.Fatal("payload corrupted over WasmEdge path")
	}
	if report.Mode != "wasmedge-http" {
		t.Fatalf("mode = %s", report.Mode)
	}
	if report.Breakdown.Serialization <= 0 {
		t.Fatal("in-sandbox serialization not measured")
	}
	// WASI staging copies on top of the kernel boundary copies.
	if report.Usage.UserCopyBytes < int64(report.Bytes) {
		t.Fatalf("user copies = %d, want >= %d (WASI staging)", report.Usage.UserCopyBytes, report.Bytes)
	}
}

func TestWasmEdgeSerializationDominates(t *testing.T) {
	// The paper's core motivation (§2.2): serialization is a far larger
	// share of transfer cost on the Wasm runtime than in containers.
	k := kernel.New("n")
	ws, err := baseline.NewWasmEdgeFunction("wa", k, guest.Module(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := baseline.NewWasmEdgeFunction("wb", k, guest.Module(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rs := baseline.NewRunCFunction("ra", k, baseline.ContainerImageBytes, nil)
	rd := baseline.NewRunCFunction("rb", k, baseline.ContainerImageBytes, nil)
	defer func() { ws.Close(); wd.Close(); rs.Close(); rd.Close() }()

	const n = 1 << 20
	if err := ws.Produce(n); err != nil {
		t.Fatal(err)
	}
	rs.Produce(n)
	_, _, wreport, err := ws.Transfer(wd, baseline.TransferEnv{})
	if err != nil {
		t.Fatal(err)
	}
	_, rreport, err := rs.Transfer(rd, baseline.TransferEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if wreport.Breakdown.Serialization <= rreport.Breakdown.Serialization {
		t.Fatalf("wasm serialization %v <= native %v", wreport.Breakdown.Serialization, rreport.Breakdown.Serialization)
	}
	wShare := float64(wreport.Breakdown.Serialization) / float64(wreport.Latency()-wreport.Breakdown.Network)
	rShare := float64(rreport.Breakdown.Serialization) / float64(rreport.Latency()-rreport.Breakdown.Network)
	if wShare <= rShare {
		t.Fatalf("serialization share: wasm %.2f <= native %.2f", wShare, rShare)
	}
}

func TestWasmEdgeHelloAndResize(t *testing.T) {
	k := kernel.New("n")
	f, err := baseline.NewWasmEdgeFunction("w", k, guest.Module(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	v, err := f.Hello()
	if err != nil || v != 42 {
		t.Fatalf("hello = %d, %v", v, err)
	}
	img := guest.ReferenceProduce(128 * 128)
	d, err := f.ResizeHalf(img, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("resize duration not measured")
	}
}

func TestTransferEnvNetworkAttribution(t *testing.T) {
	k1, k2 := kernel.New("n1"), kernel.New("n2")
	src := baseline.NewRunCFunction("a", k1, baseline.ContainerImageBytes, nil)
	dst := baseline.NewRunCFunction("b", k2, baseline.ContainerImageBytes, nil)
	defer src.Close()
	defer dst.Close()
	src.Produce(1_000_000)
	link := netsim.NewLink(100*netsim.Mbps, time.Millisecond)
	_, report, err := src.Transfer(dst, baseline.TransferEnv{Link: link, Flows: 1})
	if err != nil {
		t.Fatal(err)
	}
	// ~1 MB (plus framing) over 100 Mbps ≈ 80+ ms.
	if report.Breakdown.Network < 70*time.Millisecond {
		t.Fatalf("network time = %v", report.Breakdown.Network)
	}
}
