// Package baseline implements the two comparison systems of the paper's
// evaluation (§6.2): RunC — native-speed container functions exchanging
// serialized payloads over HTTP — and WasmEdge — Wasm functions doing the
// same through WASI-mediated sockets. Both run on the identical simulated
// kernel and network substrate as Roadrunner, so every difference in the
// results comes from the data path, not the harness.
package baseline

import (
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
)

// Cold-start model (Fig. 2a). Image distribution and sandbox provisioning
// cannot be measured inside a single-process simulation, so they are modeled
// with explicit constants; VM/module instantiation is measured for real.
const (
	// RegistryBandwidth models image pull throughput.
	RegistryBandwidth = 50 << 20 // 50 MiB/s
	// ExtractBandwidth models layer extraction/unpacking throughput.
	ExtractBandwidth = 200 << 20 // 200 MiB/s
	// RunCInitTime models namespace/cgroup/rootfs provisioning for a
	// container sandbox.
	RunCInitTime = 300 * time.Millisecond
	// WasmShimInitTime models the lightweight shim bootstrap for a Wasm
	// sandbox.
	WasmShimInitTime = 5 * time.Millisecond
)

// Paper-reported artifact sizes (Fig. 2a): Docker images ≈ 77 MB, Wasm
// binaries ≈ 3.19 MB.
const (
	ContainerImageBytes = 76_900_000
	WasmBinaryBytes     = 3_190_000
)

// PullTime models fetching and extracting an image/binary of the given size.
func PullTime(bytes int64) time.Duration {
	pull := time.Duration(float64(bytes) / RegistryBandwidth * float64(time.Second))
	extract := time.Duration(float64(bytes) / ExtractBandwidth * float64(time.Second))
	return pull + extract
}

// TransferEnv bundles the shared substrate a baseline transfer runs on.
type TransferEnv struct {
	// Link models the network between the two functions' nodes (use the
	// topology loopback for co-located functions). nil attributes no
	// network time.
	Link *netsim.Link
	// Flows is the number of concurrent flows sharing the link.
	Flows int
}

func (e TransferEnv) networkTime(bytes int64) time.Duration {
	if e.Link == nil {
		return 0
	}
	return e.Link.TransferTime(bytes, e.Flows)
}

var _ = netsim.Mbps // keep the dependency explicit for doc references
