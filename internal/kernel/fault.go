package kernel

import (
	"errors"
	"sync"
)

// ErrIO is the default error schedulable fault plans surface: the simulated
// EIO a crashed sandbox, a dropped wire or a dying node produces. The engine
// layer classifies it (together with ErrBadFD and ErrClosed) as an instance
// fault — the class of failure that is the instance's, not the caller's,
// and is therefore worth retrying on a surviving replica.
var ErrIO = errors.New("kernel: input/output error (EIO)")

// hoseOps are the page-movement operations of the virtual data hose
// (Algorithm 1): the calls a mid-transfer wire drop kills while plain
// control traffic would still flow.
var hoseOps = []string{"vmsplice", "splice", "tee", "readrefs"}

// FaultSpec schedules one reproducible fault against a process's data plane.
// Specs compose into a FaultPlan, whose hook is installed with
// Proc.InjectFault (one sandbox) or Kernel.InjectFault (every sandbox on a
// node).
type FaultSpec struct {
	// Ops restricts the fault to the named data-plane operations ("write",
	// "read", "vmsplice", "splice", "tee", "readrefs"); empty matches every
	// data-plane operation. Control-plane calls (pipe, connect, socketpair,
	// close) are never intercepted, so teardown always works.
	Ops []string
	// After is the number of matching calls that succeed before the fault
	// arms: 0 fails the first matching call, n fails every call from the
	// (n+1)th on — the crash-at-Nth-syscall schedule.
	After int64
	// Count bounds how many matching calls fail once armed; 0 means every
	// one from After on (a crash rather than a transient glitch).
	Count int64
	// Err is the error the failed calls surface; nil defaults to ErrIO.
	Err error
}

// matches reports whether the spec covers the named operation.
func (s *FaultSpec) matches(op string) bool {
	if len(s.Ops) == 0 {
		return true
	}
	for _, o := range s.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// FaultPlan compiles FaultSpecs into a schedulable, replayable fault hook.
// Each spec keeps its own match counter, so a plan deterministically fails
// the same calls on every identical replay — which is what lets the chaos
// suite pin conservation baselines against randomized schedules: the seed
// reproduces the schedule, the plan reproduces the faults.
type FaultPlan struct {
	mu    sync.Mutex
	specs []faultSpecState
	trips int64
}

type faultSpecState struct {
	FaultSpec
	matched int64
}

// NewFaultPlan compiles specs into a plan. The zero-spec plan never fires.
func NewFaultPlan(specs ...FaultSpec) *FaultPlan {
	fp := &FaultPlan{specs: make([]faultSpecState, len(specs))}
	for i, s := range specs {
		fp.specs[i] = faultSpecState{FaultSpec: s}
	}
	return fp
}

// Crash returns a plan failing every data-plane operation from the first
// call on — a dead sandbox whose control plane (teardown) still works.
func Crash() *FaultPlan { return NewFaultPlan(FaultSpec{}) }

// CrashAfter returns a plan that lets n data-plane calls succeed and fails
// every one after — the crash-at-Nth-syscall schedule.
func CrashAfter(n int64) *FaultPlan { return NewFaultPlan(FaultSpec{After: n}) }

// DropWire returns a plan failing the hose page-movement operations
// (vmsplice, splice, tee, readrefs) after n successful ones — a wire drop
// mid-hose: payload pages already queued in the channel are stranded until
// the channel is destroyed and drained.
func DropWire(after int64) *FaultPlan {
	return NewFaultPlan(FaultSpec{Ops: hoseOps, After: after})
}

// Hook adapts the plan to the Proc.InjectFault / Kernel.InjectFault
// signature.
func (fp *FaultPlan) Hook() func(op string) error { return fp.check }

// check advances every matching spec's counter and fails the call when any
// spec is armed. All matching specs advance before the verdict, so
// overlapping specs stay deterministic regardless of declaration order.
func (fp *FaultPlan) check(op string) error {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	var ferr error
	for i := range fp.specs {
		s := &fp.specs[i]
		if !s.matches(op) {
			continue
		}
		s.matched++
		armed := s.matched > s.After && (s.Count == 0 || s.matched <= s.After+s.Count)
		if armed && ferr == nil {
			ferr = s.Err
			if ferr == nil {
				ferr = ErrIO
			}
		}
	}
	if ferr != nil {
		fp.trips++
	}
	return ferr
}

// Trips reports how many data-plane calls the plan has failed so far.
func (fp *FaultPlan) Trips() int64 {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	return fp.trips
}

// InjectFault installs fn as the kernel-wide fault hook: every data-plane
// operation of every process on this kernel consults it (after the
// process's own hook), modeling node-level failure — a node dropping out
// fails every sandbox it hosts at once. Installing nil clears the hook.
func (k *Kernel) InjectFault(fn func(op string) error) {
	k.faultMu.Lock()
	k.faultFn = fn
	k.faultMu.Unlock()
}

// fault consults the kernel-wide hook (see Proc.fault for the per-process
// half of the chain).
func (k *Kernel) fault(op string) error {
	k.faultMu.Lock()
	fn := k.faultFn
	k.faultMu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(op)
}
