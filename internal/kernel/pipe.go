package kernel

import (
	"io"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/pagebuf"
)

// pipe is the kernel object behind a pipe(2) pair: a bounded ring of page
// references. It is the concrete realization of the paper's "virtual data
// hose" — data written to it prompts the kernel to retain memory buffers in
// its address space, and reads reuse the same pages instead of copying
// (§1, contribution 2).
type pipe struct {
	ring *pagebuf.Ring
}

func newPipe(capBytes int) *pipe {
	return &pipe{ring: pagebuf.NewRing(capBytes)}
}

// pipeEnd is one descriptor of a pipe: read or write side.
type pipeEnd struct {
	pipe     *pipe
	readable bool
	writable bool
}

var _ file = (*pipeEnd)(nil)

func (pe *pipeEnd) writeRefs(refs []pagebuf.Ref) error {
	if !pe.writable {
		pagebuf.ReleaseAll(refs)
		return ErrBadFD
	}
	return pe.pipe.ring.Push(refs)
}

func (pe *pipeEnd) readRefs(max int) ([]pagebuf.Ref, error) {
	if !pe.readable {
		return nil, ErrBadFD
	}
	return pe.pipe.ring.Pop(max)
}

func (pe *pipeEnd) readInto(b []byte) (int, error) {
	if !pe.readable {
		return 0, ErrBadFD
	}
	return pe.pipe.ring.ReadInto(b)
}

func (pe *pipeEnd) capacity() int { return pe.pipe.ring.Cap() }

func (pe *pipeEnd) close() error {
	if pe.writable {
		pe.pipe.ring.Close()
	}
	if pe.readable {
		// Dropping the read side discards queued pages, as the kernel
		// does when the last reader goes away.
		pe.pipe.ring.Drain()
	}
	return nil
}

// conn is one endpoint of a connected stream-socket pair (Unix-domain or
// TCP-like). Each direction is its own ring; writing queues on the peer's
// receive ring.
type conn struct {
	recv *pagebuf.Ring
	peer *pagebuf.Ring
}

var _ file = (*conn)(nil)

func newConnPair(capBytes int) (*conn, *conn) {
	r1 := pagebuf.NewRing(capBytes)
	r2 := pagebuf.NewRing(capBytes)
	return &conn{recv: r1, peer: r2}, &conn{recv: r2, peer: r1}
}

func (c *conn) writeRefs(refs []pagebuf.Ref) error {
	return c.peer.Push(refs)
}

func (c *conn) readRefs(max int) ([]pagebuf.Ref, error) {
	return c.recv.Pop(max)
}

func (c *conn) readInto(b []byte) (int, error) {
	return c.recv.ReadInto(b)
}

func (c *conn) capacity() int { return c.recv.Cap() }

func (c *conn) close() error {
	// FIN towards the peer: data already queued for it stays readable and
	// its reads drain then hit EOF.
	c.peer.Close()
	// Data queued for this endpoint can never be read again — discard it so
	// the pages return to the pool (a real kernel frees the receive queue on
	// close the same way).
	c.recv.Close()
	c.recv.Drain()
	return nil
}

// Stream adapts a process/descriptor pair to io.ReadWriteCloser so byte-
// oriented layers (e.g. internal/minihttp) can speak over simulated sockets
// while every operation is still metered through the owning process.
type Stream struct {
	proc *Proc
	fd   int
}

var _ io.ReadWriteCloser = (*Stream)(nil)

// NewStream wraps an open descriptor of proc.
func NewStream(proc *Proc, fd int) *Stream { return &Stream{proc: proc, fd: fd} }

// FD returns the wrapped descriptor.
func (s *Stream) FD() int { return s.fd }

// Read implements io.Reader via the read(2) path.
func (s *Stream) Read(b []byte) (int, error) {
	n, err := s.proc.Read(s.fd, b)
	if err == io.EOF && n > 0 {
		return n, nil
	}
	return n, err
}

// Write implements io.Writer via the write(2) path.
func (s *Stream) Write(b []byte) (int, error) {
	return s.proc.Write(s.fd, b)
}

// Close closes the descriptor.
func (s *Stream) Close() error { return s.proc.Close(s.fd) }
