package kernel

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/pagebuf"
)

func newTestProc(t *testing.T) (*Proc, *metrics.Account) {
	t.Helper()
	k := New("test-node")
	acct := &metrics.Account{}
	p := k.NewProc("proc", acct)
	t.Cleanup(p.CloseAll)
	return p, acct
}

func TestPipeWriteRead(t *testing.T) {
	p, acct := newTestProc(t)
	rfd, wfd := p.Pipe()
	msg := []byte("through the data hose")
	if _, err := p.Write(wfd, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	n, err := p.Read(rfd, got)
	if err != nil || n != len(msg) {
		t.Fatalf("read = (%d, %v)", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	u := acct.Snapshot()
	// write: copy_from_user; read: copy_to_user — both kernel-boundary copies.
	if u.KernelCopyBytes != int64(2*len(msg)) {
		t.Fatalf("kernel copies = %d, want %d", u.KernelCopyBytes, 2*len(msg))
	}
	if u.Syscalls != 3 { // pipe + write + read
		t.Fatalf("syscalls = %d, want 3", u.Syscalls)
	}
}

func TestVmspliceIsZeroCopy(t *testing.T) {
	p, acct := newTestProc(t)
	rfd, wfd := p.PipeSized(1 << 20)
	payload := make([]byte, 100*1024)
	rand.New(rand.NewSource(7)).Read(payload)

	before := acct.Snapshot()
	if _, err := p.Vmsplice(wfd, payload); err != nil {
		t.Fatal(err)
	}
	delta := acct.Snapshot().Sub(before)
	if delta.TotalCopyBytes() != 0 {
		t.Fatalf("vmsplice copied %d bytes, want 0", delta.TotalCopyBytes())
	}
	if delta.Syscalls != 1 {
		t.Fatalf("vmsplice syscalls = %d", delta.Syscalls)
	}

	got := make([]byte, len(payload))
	if _, err := io.ReadFull(readerFor(p, rfd), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted")
	}
}

func TestVmspliceRequiresPipe(t *testing.T) {
	k := New("n")
	a := k.NewProc("a", nil)
	b := k.NewProc("b", nil)
	fa, _, err := SocketPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Vmsplice(fa, []byte("x")); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("vmsplice to socket = %v, want ErrNotSupported", err)
	}
}

func TestSpliceMovesWithoutCopy(t *testing.T) {
	k := New("n")
	acct := &metrics.Account{}
	a := k.NewProc("a", acct)
	b := k.NewProc("b", nil)
	defer a.CloseAll()
	defer b.CloseAll()

	rfd, wfd := a.PipeSized(1 << 20)
	sa, sb, err := SocketPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 300*1024)
	rand.New(rand.NewSource(9)).Read(payload)
	if _, err := a.Vmsplice(wfd, payload); err != nil {
		t.Fatal(err)
	}

	before := acct.Snapshot()
	moved := 0
	for moved < len(payload) {
		n, err := a.Splice(rfd, sa, len(payload)-moved)
		if err != nil {
			t.Fatal(err)
		}
		moved += n
	}
	delta := acct.Snapshot().Sub(before)
	if delta.TotalCopyBytes() != 0 {
		t.Fatalf("splice copied %d bytes, want 0", delta.TotalCopyBytes())
	}

	got := make([]byte, len(payload))
	if _, err := io.ReadFull(readerFor(b, sb), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across splice")
	}
}

func TestSpliceRequiresAPipe(t *testing.T) {
	k := New("n")
	a := k.NewProc("a", nil)
	b := k.NewProc("b", nil)
	s1a, _, err := SocketPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	s2a, _, err := SocketPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Splice(s1a, s2a, 10); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("socket->socket splice = %v, want ErrNotSupported", err)
	}
}

func TestSpliceInvalidLength(t *testing.T) {
	p, _ := newTestProc(t)
	rfd, wfd := p.Pipe()
	if _, err := p.Splice(rfd, wfd, 0); !errors.Is(err, ErrInvalid) {
		t.Fatalf("splice n=0 = %v, want ErrInvalid", err)
	}
}

func TestReadRefsHandsPagesToUser(t *testing.T) {
	p, acct := newTestProc(t)
	rfd, wfd := p.PipeSized(1 << 20)
	payload := []byte("pages, not copies")
	if _, err := p.Vmsplice(wfd, payload); err != nil {
		t.Fatal(err)
	}
	before := acct.Snapshot()
	refs, err := p.ReadRefs(rfd, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer pagebuf.ReleaseAll(refs)
	if delta := acct.Snapshot().Sub(before); delta.TotalCopyBytes() != 0 {
		t.Fatalf("ReadRefs copied %d bytes", delta.TotalCopyBytes())
	}
	if got := pagebuf.TotalLen(refs); got != len(payload) {
		t.Fatalf("moved %d bytes", got)
	}
}

func TestBadFDErrors(t *testing.T) {
	p, _ := newTestProc(t)
	if _, err := p.Write(99, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatalf("write bad fd = %v", err)
	}
	if _, err := p.Read(99, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read bad fd = %v", err)
	}
	if err := p.Close(99); !errors.Is(err, ErrBadFD) {
		t.Fatalf("close bad fd = %v", err)
	}
	if _, err := p.Vmsplice(99, nil); !errors.Is(err, ErrBadFD) {
		t.Fatalf("vmsplice bad fd = %v", err)
	}
	if _, err := p.ReadRefs(99, 1); !errors.Is(err, ErrBadFD) {
		t.Fatalf("readrefs bad fd = %v", err)
	}
}

func TestPipeDirectionEnforcement(t *testing.T) {
	p, _ := newTestProc(t)
	rfd, wfd := p.Pipe()
	if _, err := p.Write(rfd, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatalf("write to read end = %v", err)
	}
	if _, err := p.Read(wfd, make([]byte, 1)); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read from write end = %v", err)
	}
}

func TestSocketPairSameKernelOnly(t *testing.T) {
	a := New("n1").NewProc("a", nil)
	b := New("n2").NewProc("b", nil)
	if _, _, err := SocketPair(a, b); !errors.Is(err, ErrInvalid) {
		t.Fatalf("cross-kernel socketpair = %v, want ErrInvalid", err)
	}
}

func TestSocketPairDuplex(t *testing.T) {
	k := New("n")
	a := k.NewProc("a", nil)
	b := k.NewProc("b", nil)
	fa, fb, err := SocketPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(fa, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(readerFor(b, fb), buf); err != nil || string(buf) != "ping" {
		t.Fatalf("b got %q, %v", buf, err)
	}
	if _, err := b.Write(fb, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(readerFor(a, fa), buf); err != nil || string(buf) != "pong" {
		t.Fatalf("a got %q, %v", buf, err)
	}
}

func TestConnectAcrossKernels(t *testing.T) {
	ka, kb := New("edge"), New("cloud")
	a := ka.NewProc("client", nil)
	b := kb.NewProc("server", nil)
	fa, fb := Connect(a, b)
	msg := make([]byte, 50_000)
	rand.New(rand.NewSource(3)).Read(msg)
	if _, err := a.Write(fa, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(readerFor(b, fb), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted across TCP-like connection")
	}
}

func TestCloseMakesPeerReadEOF(t *testing.T) {
	k := New("n")
	a := k.NewProc("a", nil)
	b := k.NewProc("b", nil)
	fa, fb, err := SocketPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(fa); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(fb, make([]byte, 1)); err != io.EOF {
		t.Fatalf("peer read after close = %v, want io.EOF", err)
	}
}

func TestStreamAdapter(t *testing.T) {
	k := New("n")
	a := k.NewProc("a", nil)
	b := k.NewProc("b", nil)
	fa, fb, err := SocketPair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := NewStream(a, fa), NewStream(b, fb)
	if sa.FD() != fa {
		t.Fatalf("FD() = %d", sa.FD())
	}
	if _, err := sa.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := sa.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sb)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
}

func TestSyscallTime(t *testing.T) {
	k := New("n")
	k.SetCosts(CostModel{SyscallOverhead: 100})
	if got := k.SyscallTime(5); got != 500 {
		t.Fatalf("syscall time = %v", got)
	}
	if k.Costs().SyscallOverhead != 100 {
		t.Fatal("SetCosts not applied")
	}
}

// Property: any payload pushed through pipe→splice→socket arrives intact.
func TestHoseConservationProperty(t *testing.T) {
	f := func(data []byte) bool {
		k := New("n")
		a := k.NewProc("a", nil)
		b := k.NewProc("b", nil)
		defer a.CloseAll()
		defer b.CloseAll()
		rfd, wfd := a.PipeSized(1 << 24)
		sa, sb, err := SocketPair(a, b)
		if err != nil {
			return false
		}
		if len(data) > 0 {
			if _, err := a.Vmsplice(wfd, data); err != nil {
				return false
			}
			moved := 0
			for moved < len(data) {
				n, err := a.Splice(rfd, sa, len(data)-moved)
				if err != nil {
					return false
				}
				moved += n
			}
		}
		if err := a.Close(sa); err != nil {
			return false
		}
		got, err := io.ReadAll(readerFor(b, sb))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func readerFor(p *Proc, fd int) io.Reader { return NewStream(p, fd) }
