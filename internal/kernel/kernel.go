// Package kernel simulates the host-kernel mechanisms Roadrunner relies on:
// processes with file-descriptor tables, pipes (the paper's "virtual data
// hose"), Unix-domain and TCP-style stream sockets, and the splice(2) /
// vmsplice(2) zero-copy primitives (§4.3, Algorithm 1).
//
// All payload movement is real — bytes are genuinely copied, or genuinely
// moved by page reference — and every copy, syscall and context switch is
// charged to the calling process's metrics.Account. This substitutes for the
// Linux kernel of the paper's testbed while making the quantities the paper
// argues about (copy counts, user↔kernel crossings) exact and assertable.
package kernel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/pagebuf"
)

// Kernel errors mirror their errno counterparts.
var (
	ErrBadFD        = errors.New("kernel: bad file descriptor (EBADF)")
	ErrInvalid      = errors.New("kernel: invalid argument (EINVAL)")
	ErrClosed       = errors.New("kernel: connection closed (EPIPE)")
	ErrNotSupported = errors.New("kernel: operation not supported on file (ENOTSUP)")
)

// Default buffer sizes.
const (
	// DefaultPipeCap matches the 16-page default Linux pipe buffer.
	DefaultPipeCap = 16 * pagebuf.PageSize
	// DefaultSocketCap is effectively unbounded: transfers in this
	// simulation run to completion on the sender before the receiver
	// drains, so socket buffers must absorb whole payloads. Memory held
	// is still tracked through the page pool.
	DefaultSocketCap = 1 << 62
	// MaxSyscallChunk bounds the bytes one read/write syscall moves
	// before the kernel would block or return short; used to derive
	// realistic syscall counts for chunked operations.
	MaxSyscallChunk = 1 << 20
)

// CostModel carries the modeled (non-measured) per-operation costs. Only
// mode-switch overhead is modeled; all data movement is measured for real.
type CostModel struct {
	// SyscallOverhead is charged per syscall as kernel CPU time; it
	// models the user→kernel→user mode switch that a function call in
	// this simulation does not pay. Linux syscall entry/exit costs are
	// on the order of hundreds of nanoseconds.
	SyscallOverhead time.Duration
}

// DefaultCostModel returns the calibration used by the experiments.
func DefaultCostModel() CostModel {
	return CostModel{SyscallOverhead: 400 * time.Nanosecond}
}

// Kernel is one simulated host kernel. Each cluster node has its own.
type Kernel struct {
	name string
	pool *pagebuf.Pool

	mu    sync.Mutex
	costs CostModel
	procs []*Proc

	// kernel-wide fault injection hook (node-level failure), see
	// Kernel.InjectFault in fault.go.
	faultMu sync.Mutex
	faultFn func(op string) error
}

// New returns a kernel for the named node using the default cost model.
func New(name string) *Kernel {
	return &Kernel{name: name, pool: pagebuf.NewPool(), costs: DefaultCostModel()}
}

// Name returns the node name this kernel belongs to.
func (k *Kernel) Name() string { return k.name }

// Pool exposes the kernel page pool (for residency metrics).
func (k *Kernel) Pool() *pagebuf.Pool { return k.pool }

// Costs returns the kernel's cost model.
func (k *Kernel) Costs() CostModel {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.costs
}

// SetCosts replaces the cost model (used by ablation benchmarks).
func (k *Kernel) SetCosts(c CostModel) {
	k.mu.Lock()
	k.costs = c
	k.mu.Unlock()
}

// SyscallTime converts a syscall count into modeled mode-switch time; the
// shim layers add it to the Transfer component of latency breakdowns.
func (k *Kernel) SyscallTime(n int64) time.Duration {
	return time.Duration(n) * k.Costs().SyscallOverhead
}

// NewProc creates a process on this kernel charging work to acct. A nil
// account is valid and discards charges.
func (k *Kernel) NewProc(name string, acct *metrics.Account) *Proc {
	p := &Proc{
		k:    k,
		name: name,
		acct: acct,
		fds:  make(map[int]file),
		next: 3, // 0..2 reserved, as on a real system
	}
	k.mu.Lock()
	k.procs = append(k.procs, p)
	k.mu.Unlock()
	return p
}

// file is the kernel-internal interface all FD-addressable objects satisfy.
type file interface {
	// writeRefs queues page references on the file (ownership transfers).
	writeRefs(refs []pagebuf.Ref) error
	// readRefs dequeues up to max payload bytes of page references.
	readRefs(max int) ([]pagebuf.Ref, error)
	// readInto copies queued bytes into b.
	readInto(b []byte) (int, error)
	// capacity reports the buffer capacity in bytes.
	capacity() int
	close() error
}

// Proc is a simulated process: the holder of a file-descriptor table and the
// unit resource usage is charged to (the paper measures per-sandbox cgroups;
// a Proc is a sandbox here).
type Proc struct {
	k    *Kernel
	name string
	acct *metrics.Account

	mu   sync.Mutex
	fds  map[int]file
	next int

	// batching state (io_uring-style submission, see BeginBatch).
	batchMu    sync.Mutex
	batching   bool
	batchedOps int64

	// fault injection hook (tests), see InjectFault.
	faultMu sync.Mutex
	faultFn func(op string) error
}

// InjectFault installs fn as the process's syscall fault hook: every
// data-plane operation (write, read, vmsplice, splice, tee, readrefs)
// consults the hook with the operation name before doing any work, and a
// non-nil return fails the call with that error. Control-plane calls (pipe,
// connect, socketpair, close) are never intercepted, so error paths can
// always tear down. Installing nil clears the hook. Tests use this to drive
// transfer paths through every failure point and assert descriptor and
// page-pool conservation.
func (p *Proc) InjectFault(fn func(op string) error) {
	p.faultMu.Lock()
	p.faultFn = fn
	p.faultMu.Unlock()
}

// fault consults the injection hooks — the process's own, then the
// kernel-wide one (node-level failure) — and a non-nil error aborts the
// calling operation before any syscall is charged or any state changes.
func (p *Proc) fault(op string) error {
	p.faultMu.Lock()
	fn := p.faultFn
	p.faultMu.Unlock()
	if fn != nil {
		if err := fn(op); err != nil {
			return err
		}
	}
	return p.k.fault(op)
}

// NumFDs reports the number of open descriptors in the process's FD table
// (for leak assertions in tests and residency audits).
func (p *Proc) NumFDs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fds)
}

// syscall charges one syscall, or queues it when a submission batch is open.
func (p *Proc) syscall() {
	p.batchMu.Lock()
	if p.batching {
		p.batchedOps++
		p.batchMu.Unlock()
		return
	}
	p.batchMu.Unlock()
	p.acct.Syscall()
}

// BeginBatch opens an io_uring-style submission batch: subsequent syscalls
// on this process are queued and charged as a single kernel entry at
// EndBatch. This implements the syscall-batching extension the paper lists
// as future work (§9 "we aim to introduce … syscall batching").
func (p *Proc) BeginBatch() {
	p.batchMu.Lock()
	p.batching = true
	p.batchMu.Unlock()
}

// EndBatch submits the open batch, charging one syscall for the whole
// submission, and returns the number of operations it covered.
func (p *Proc) EndBatch() int64 {
	p.batchMu.Lock()
	ops := p.batchedOps
	p.batching = false
	p.batchedOps = 0
	p.batchMu.Unlock()
	if ops > 0 {
		p.acct.Syscall()
	}
	return ops
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Account returns the process's resource account.
func (p *Proc) Account() *metrics.Account { return p.acct }

func (p *Proc) install(f file) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	fd := p.next
	p.next++
	p.fds[fd] = f
	return fd
}

func (p *Proc) lookup(fd int) (file, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, ok := p.fds[fd]
	if !ok {
		return nil, fmt.Errorf("fd %d: %w", fd, ErrBadFD)
	}
	return f, nil
}

// Close closes a file descriptor.
func (p *Proc) Close(fd int) error {
	p.mu.Lock()
	f, ok := p.fds[fd]
	delete(p.fds, fd)
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("fd %d: %w", fd, ErrBadFD)
	}
	p.syscall()
	return f.close()
}

// CloseAll closes every open descriptor (process teardown).
func (p *Proc) CloseAll() {
	p.mu.Lock()
	fds := p.fds
	p.fds = make(map[int]file)
	p.mu.Unlock()
	for _, f := range fds {
		_ = f.close()
	}
}

// refScratch recycles the transient []Ref runs Write builds between
// AppendCopy and writeRefs. The run only carries references across that
// window — buffers copy the Ref values into their own queues — so the
// backing array is reusable the moment writeRefs returns, and a warm Write
// allocates nothing.
var refScratch = sync.Pool{New: func() any {
	s := make([]pagebuf.Ref, 0, 64)
	return &s
}}

// Write copies b from user space into the file's kernel buffer, exactly as
// write(2) does: one syscall, one copy_from_user of the full payload. It
// blocks until the buffer accepts all bytes.
func (p *Proc) Write(fd int, b []byte) (int, error) {
	if err := p.fault("write"); err != nil {
		return 0, err
	}
	f, err := p.lookup(fd)
	if err != nil {
		return 0, err
	}
	p.syscall()
	p.acct.Copy(metrics.Kernel, len(b))
	sp := refScratch.Get().(*[]pagebuf.Ref)
	refs := p.k.pool.AppendCopy((*sp)[:0], b)
	werr := f.writeRefs(refs)
	// Clear before recycling: a pooled array must not pin pages the buffer
	// now owns. (On error writeRefs already released the refs it rejected.)
	clear(refs)
	*sp = refs[:0]
	refScratch.Put(sp)
	if werr != nil {
		return 0, fmt.Errorf("write fd %d: %w", fd, werr)
	}
	return len(b), nil
}

// Read copies up to len(b) queued bytes into b (copy_to_user): one syscall,
// one boundary copy. It blocks until at least one byte is available.
func (p *Proc) Read(fd int, b []byte) (int, error) {
	if err := p.fault("read"); err != nil {
		return 0, err
	}
	f, err := p.lookup(fd)
	if err != nil {
		return 0, err
	}
	p.syscall()
	n, err := f.readInto(b)
	p.acct.Copy(metrics.Kernel, n)
	return n, err
}

// Vmsplice maps user memory into the file's buffer without copying, modeling
// vmsplice(2) with SPLICE_F_GIFT: the pages of b are gifted to the kernel and
// b must not be modified while in flight. One syscall, zero copies. The
// destination must be a pipe, per the real syscall's contract.
func (p *Proc) Vmsplice(fd int, b []byte) (int, error) {
	if err := p.fault("vmsplice"); err != nil {
		return 0, err
	}
	f, err := p.lookup(fd)
	if err != nil {
		return 0, err
	}
	if _, ok := f.(*pipeEnd); !ok {
		return 0, fmt.Errorf("vmsplice fd %d: %w", fd, ErrNotSupported)
	}
	p.syscall()
	// The ref run rides the pooled scratch (the pipe copies the values);
	// only the gifted page headers — which live until the pages drain —
	// are allocated, in one run-sized block inside AppendGift.
	sp := refScratch.Get().(*[]pagebuf.Ref)
	refs := pagebuf.AppendGift((*sp)[:0], b)
	werr := f.writeRefs(refs)
	clear(refs)
	*sp = refs[:0]
	refScratch.Put(sp)
	if werr != nil {
		return 0, fmt.Errorf("vmsplice fd %d: %w", fd, werr)
	}
	return len(b), nil
}

// Splice moves up to n bytes of page references from one file's buffer to
// another's without copying, modeling splice(2). One of the two descriptors
// must be a pipe, per the real syscall's contract. One syscall, zero copies.
// It returns the number of bytes moved (possibly short, like the syscall).
func (p *Proc) Splice(infd, outfd int, n int) (int, error) {
	if err := p.fault("splice"); err != nil {
		return 0, err
	}
	in, err := p.lookup(infd)
	if err != nil {
		return 0, err
	}
	out, err := p.lookup(outfd)
	if err != nil {
		return 0, err
	}
	_, inPipe := in.(*pipeEnd)
	_, outPipe := out.(*pipeEnd)
	if !inPipe && !outPipe {
		return 0, fmt.Errorf("splice fd %d->%d: %w", infd, outfd, ErrNotSupported)
	}
	if n <= 0 {
		return 0, fmt.Errorf("splice: n=%d: %w", n, ErrInvalid)
	}
	p.syscall()
	refs, err := in.readRefs(n)
	if err != nil {
		return 0, err
	}
	moved := pagebuf.TotalLen(refs)
	if err := out.writeRefs(refs); err != nil {
		return moved, fmt.Errorf("splice fd %d->%d: %w", infd, outfd, err)
	}
	return moved, nil
}

// ReadRefs dequeues page references directly (the receive half of the data
// hose: the shim takes pages from the kernel and writes them straight into
// the target VM's linear memory). One syscall, zero copies here — the copy
// into linear memory happens, and is charged, at the ABI layer.
func (p *Proc) ReadRefs(fd int, max int) ([]pagebuf.Ref, error) {
	if err := p.fault("readrefs"); err != nil {
		return nil, err
	}
	f, err := p.lookup(fd)
	if err != nil {
		return nil, err
	}
	p.syscall()
	return f.readRefs(max)
}

// Pipe creates a pipe and returns (readFD, writeFD), as pipe(2) does.
func (p *Proc) Pipe() (int, int) {
	return p.PipeSized(DefaultPipeCap)
}

// PipeSized creates a pipe with an explicit capacity, modeling
// fcntl(F_SETPIPE_SZ). Roadrunner's shim enlarges its data-hose pipes the
// same way a real implementation would.
func (p *Proc) PipeSized(capBytes int) (int, int) {
	p.syscall()
	pi := newPipe(capBytes)
	rfd := p.install(&pipeEnd{pipe: pi, readable: true})
	wfd := p.install(&pipeEnd{pipe: pi, writable: true})
	return rfd, wfd
}

// SocketPair creates a connected pair of Unix-domain stream sockets inside
// this kernel and returns one FD in each of the two processes, modeling the
// socketpair(2)-style IPC channel the kernel-space mode uses (§5).
func SocketPair(a, b *Proc) (int, int, error) {
	if a.k != b.k {
		return 0, 0, fmt.Errorf("socketpair across kernels %q and %q: %w", a.k.name, b.k.name, ErrInvalid)
	}
	a.acct.Syscall()
	c1, c2 := newConnPair(DefaultSocketCap)
	return a.install(c1), b.install(c2), nil
}

// Connect creates a connected stream-socket pair between two processes that
// may live on different kernels, modeling a TCP connection. Wire time is not
// simulated here — the caller attributes it from the netsim link between the
// two nodes. The 3-way handshake is represented by one syscall on each side.
func Connect(client, server *Proc) (int, int) {
	client.acct.Syscall()
	server.acct.Syscall()
	c1, c2 := newConnPair(DefaultSocketCap)
	return client.install(c1), server.install(c2)
}

// Tee duplicates up to n queued bytes from one pipe into a file without
// consuming them, modeling tee(2): page references are retained and shared,
// no payload bytes are copied. The input must be a pipe read end. Used by
// the zero-copy multicast extension (one payload fanned out to many targets
// from a single data hose).
func (p *Proc) Tee(infd, outfd int, n int) (int, error) {
	if err := p.fault("tee"); err != nil {
		return 0, err
	}
	in, err := p.lookup(infd)
	if err != nil {
		return 0, err
	}
	out, err := p.lookup(outfd)
	if err != nil {
		return 0, err
	}
	pe, ok := in.(*pipeEnd)
	if !ok || !pe.readable {
		return 0, fmt.Errorf("tee fd %d: %w", infd, ErrNotSupported)
	}
	if n <= 0 {
		return 0, fmt.Errorf("tee: n=%d: %w", n, ErrInvalid)
	}
	p.syscall()
	refs, err := pe.pipe.ring.Clone(n)
	if err != nil {
		return 0, err
	}
	cloned := pagebuf.TotalLen(refs)
	if err := out.writeRefs(refs); err != nil {
		return cloned, fmt.Errorf("tee fd %d->%d: %w", infd, outfd, err)
	}
	return cloned, nil
}
