package kernel

import (
	"errors"
	"testing"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
)

// TestCrashAfterFailsFromNthCall pins the crash-at-Nth-syscall schedule:
// exactly After data-plane calls succeed, every later one fails with ErrIO,
// and the control plane (close) still works on the crashed process.
func TestCrashAfterFailsFromNthCall(t *testing.T) {
	p, _ := newTestProc(t)
	rfd, wfd := p.Pipe()

	plan := CrashAfter(2)
	p.InjectFault(plan.Hook())

	if _, err := p.Write(wfd, []byte("a")); err != nil {
		t.Fatalf("call 1 (within After budget): %v", err)
	}
	buf := make([]byte, 1)
	if _, err := p.Read(rfd, buf); err != nil {
		t.Fatalf("call 2 (within After budget): %v", err)
	}
	for i := 3; i <= 5; i++ {
		if _, err := p.Write(wfd, []byte("b")); !errors.Is(err, ErrIO) {
			t.Fatalf("call %d = %v, want ErrIO", i, err)
		}
	}
	if got := plan.Trips(); got != 3 {
		t.Fatalf("Trips() = %d, want 3", got)
	}
	// Control plane is never intercepted: teardown works on a dead sandbox.
	if err := p.Close(rfd); err != nil {
		t.Fatalf("close on crashed proc: %v", err)
	}
	if err := p.Close(wfd); err != nil {
		t.Fatalf("close on crashed proc: %v", err)
	}
}

// TestDropWireFailsHoseOpsOnly pins the wire-drop schedule: page-movement
// operations fail while plain write/read traffic still flows.
func TestDropWireFailsHoseOpsOnly(t *testing.T) {
	p, _ := newTestProc(t)
	rfd, wfd := p.Pipe()

	p.InjectFault(DropWire(0).Hook())

	if _, err := p.Vmsplice(wfd, make([]byte, 8)); !errors.Is(err, ErrIO) {
		t.Fatalf("vmsplice = %v, want ErrIO", err)
	}
	if _, err := p.ReadRefs(rfd, 8); !errors.Is(err, ErrIO) {
		t.Fatalf("readrefs = %v, want ErrIO", err)
	}
	if _, err := p.Write(wfd, []byte("x")); err != nil {
		t.Fatalf("write through dropped wire = %v, want nil (not a hose op)", err)
	}
	buf := make([]byte, 1)
	if _, err := p.Read(rfd, buf); err != nil {
		t.Fatalf("read through dropped wire = %v, want nil (not a hose op)", err)
	}
}

// TestFaultSpecCountBoundsTransient pins transient faults: Count armed calls
// fail, then the fault clears on its own.
func TestFaultSpecCountBoundsTransient(t *testing.T) {
	p, _ := newTestProc(t)
	_, wfd := p.Pipe()

	custom := errors.New("flaky NIC")
	p.InjectFault(NewFaultPlan(FaultSpec{Ops: []string{"write"}, After: 1, Count: 2, Err: custom}).Hook())

	if _, err := p.Write(wfd, []byte("a")); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	for i := 2; i <= 3; i++ {
		if _, err := p.Write(wfd, []byte("a")); !errors.Is(err, custom) {
			t.Fatalf("call %d = %v, want injected error", i, err)
		}
	}
	if _, err := p.Write(wfd, []byte("a")); err != nil {
		t.Fatalf("call 4 (past Count) = %v, want recovered", err)
	}
}

// TestKernelInjectFaultCoversEveryProc pins node-level failure: a kernel-wide
// hook fails data-plane calls of every process on the node, and clearing it
// recovers them all.
func TestKernelInjectFaultCoversEveryProc(t *testing.T) {
	k := New("node")
	a := k.NewProc("a", &metrics.Account{})
	b := k.NewProc("b", &metrics.Account{})
	t.Cleanup(a.CloseAll)
	t.Cleanup(b.CloseAll)
	_, awfd := a.Pipe()
	_, bwfd := b.Pipe()

	k.InjectFault(Crash().Hook())
	if _, err := a.Write(awfd, []byte("x")); !errors.Is(err, ErrIO) {
		t.Fatalf("proc a on crashed node = %v, want ErrIO", err)
	}
	if _, err := b.Write(bwfd, []byte("x")); !errors.Is(err, ErrIO) {
		t.Fatalf("proc b on crashed node = %v, want ErrIO", err)
	}

	k.InjectFault(nil)
	if _, err := a.Write(awfd, []byte("x")); err != nil {
		t.Fatalf("proc a after node recovery: %v", err)
	}
	if _, err := b.Write(bwfd, []byte("x")); err != nil {
		t.Fatalf("proc b after node recovery: %v", err)
	}
}

// TestFaultPlanReplaysDeterministically pins that two identical plans fail
// the same calls in the same order — the property the chaos suite's seeded
// schedules rely on.
func TestFaultPlanReplaysDeterministically(t *testing.T) {
	run := func() []bool {
		p, _ := newTestProc(t)
		_, wfd := p.Pipe()
		p.InjectFault(NewFaultPlan(
			FaultSpec{Ops: []string{"write"}, After: 2, Count: 1},
			FaultSpec{After: 5},
		).Hook())
		var outcome []bool
		for i := 0; i < 8; i++ {
			_, err := p.Write(wfd, []byte("x"))
			outcome = append(outcome, err == nil)
		}
		return outcome
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at call %d: %v vs %v", i, a, b)
		}
	}
}
