package core_test

import (
	"errors"
	"testing"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/core"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/pagebuf"
)

var wf = core.Workflow{Name: "wf-test", Tenant: "tenant-a"}

func newShim(t *testing.T, name string, k *kernel.Kernel) *core.Shim {
	t.Helper()
	s, err := core.NewShim(core.ShimConfig{
		Name:     name,
		Workflow: wf,
		Kernel:   k,
		Module:   guest.Module(),
	})
	if err != nil {
		t.Fatalf("shim %s: %v", name, err)
	}
	t.Cleanup(s.Close)
	return s
}

func addFn(t *testing.T, s *core.Shim, name string) *core.Function {
	t.Helper()
	f, err := s.AddFunction(name)
	if err != nil {
		t.Fatalf("add %s: %v", name, err)
	}
	return f
}

// verifyDelivery checks the delivered bytes inside dst via the guest's own
// checksum.
func verifyDelivery(t *testing.T, dst *core.Function, ref core.InboundRef, n int) {
	t.Helper()
	res, err := dst.Call(guest.ExportConsume, uint64(ref.Ptr), uint64(ref.Len))
	if err != nil {
		t.Fatalf("consume: %v", err)
	}
	want := guest.ReferenceChecksum(guest.ReferenceProduce(n))
	if res[0] != want {
		t.Fatalf("checksum mismatch: got %#x want %#x", res[0], want)
	}
}

func TestShimRequiresKernelAndModule(t *testing.T) {
	if _, err := core.NewShim(core.ShimConfig{Module: guest.Module()}); err == nil {
		t.Fatal("missing kernel accepted")
	}
	if _, err := core.NewShim(core.ShimConfig{Kernel: kernel.New("n")}); err == nil {
		t.Fatal("missing module accepted")
	}
}

func TestShimLifecycleAndBundle(t *testing.T) {
	k := kernel.New("node-1")
	s := newShim(t, "shim-a", k)
	if s.ColdStart() < 0 {
		t.Fatal("negative cold start")
	}
	b := s.Bundle()
	if b.SpecVersion == "" || b.BinaryBytes != len(guest.Module()) {
		t.Fatalf("bundle = %+v", b)
	}
	if b.Annotations["io.roadrunner.workflow"] != wf.Name {
		t.Fatal("workflow annotation missing")
	}
	before := s.ColdStart()
	addFn(t, s, "a")
	if s.ColdStart() < before {
		t.Fatal("AddFunction did not accumulate cold start")
	}
}

func TestUserSpaceTransfer(t *testing.T) {
	k := kernel.New("node-1")
	s := newShim(t, "shim", k)
	fa, fb := addFn(t, s, "a"), addFn(t, s, "b")

	const n = 300_000
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	ref, report, err := core.UserSpaceTransfer(fa, fb, core.UserOptions{})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, fb, ref, n)

	if report.Mode != "user" || report.Bytes != n {
		t.Fatalf("report = %+v", report)
	}
	// User-space mode: exactly one user-space copy, zero kernel copies,
	// zero serialization, zero network.
	if report.Usage.UserCopyBytes != n {
		t.Fatalf("user copies = %d, want %d", report.Usage.UserCopyBytes, n)
	}
	if report.Usage.KernelCopyBytes != 0 {
		t.Fatalf("kernel copies = %d, want 0", report.Usage.KernelCopyBytes)
	}
	if report.Breakdown.Serialization != 0 || report.Breakdown.Network != 0 {
		t.Fatalf("breakdown = %+v", report.Breakdown)
	}
	if report.Breakdown.WasmIO <= 0 {
		t.Fatal("WasmIO time not measured")
	}
}

func TestUserSpaceTransferRequiresSameVM(t *testing.T) {
	k := kernel.New("node-1")
	s1, s2 := newShim(t, "s1", k), newShim(t, "s2", k)
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
	if _, _, err := core.UserSpaceTransfer(fa, fb, core.UserOptions{}); !errors.Is(err, core.ErrDifferentVM) {
		t.Fatalf("err = %v", err)
	}
}

func TestTransferWithoutOutputFails(t *testing.T) {
	k := kernel.New("node-1")
	s := newShim(t, "s", k)
	fa, fb := addFn(t, s, "a"), addFn(t, s, "b")
	// No produce: locate returns an empty region; transfer of zero bytes
	// succeeds trivially, but Output() must report the condition.
	if _, err := fa.Output(); !errors.Is(err, core.ErrNoOutput) {
		t.Fatalf("Output = %v", err)
	}
	if _, _, err := core.UserSpaceTransfer(fa, fb, core.UserOptions{}); err != nil {
		t.Fatalf("zero transfer: %v", err)
	}
}

func TestKernelSpaceTransfer(t *testing.T) {
	k := kernel.New("node-1")
	s1, s2 := newShim(t, "s1", k), newShim(t, "s2", k)
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")

	const n = 500_000
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	ref, report, err := core.KernelSpaceTransfer(fa, fb, core.KernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, fb, ref, n)

	if report.Mode != "kernel" {
		t.Fatalf("mode = %s", report.Mode)
	}
	// Kernel mode: payload crosses the kernel boundary exactly twice
	// (copy_from_user + copy into linear memory), serialization-free.
	if report.Usage.KernelCopyBytes != 2*n {
		t.Fatalf("kernel copies = %d, want %d", report.Usage.KernelCopyBytes, 2*n)
	}
	if report.Breakdown.Serialization != 0 {
		t.Fatal("kernel mode serialized")
	}
	if report.Usage.Syscalls == 0 || report.Breakdown.Transfer <= 0 {
		t.Fatalf("transfer accounting missing: %+v", report)
	}
}

func TestKernelSpaceTransferValidations(t *testing.T) {
	k1, k2 := kernel.New("n1"), kernel.New("n2")
	s1 := newShim(t, "s1", k1)
	s2 := newShim(t, "s2", k2)
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
	if _, _, err := core.KernelSpaceTransfer(fa, fb, core.KernelOptions{}); !errors.Is(err, core.ErrDifferentNode) {
		t.Fatalf("cross-node kernel transfer = %v", err)
	}
	fc := addFn(t, s1, "c")
	if _, _, err := core.KernelSpaceTransfer(fa, fc, core.KernelOptions{}); !errors.Is(err, core.ErrSameVM) {
		t.Fatalf("same-VM kernel transfer = %v", err)
	}
}

func TestNetworkTransfer(t *testing.T) {
	k1, k2 := kernel.New("edge"), kernel.New("cloud")
	s1, s2 := newShim(t, "s1", k1), newShim(t, "s2", k2)
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")

	const n = 2_000_000
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	link := netsim.NewLink(100*netsim.Mbps, 0)
	ref, report, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, fb, ref, n)

	// Near-zero copy: the only payload copy is the final write into the
	// target's linear memory (user space). Zero kernel boundary copies.
	if report.Usage.KernelCopyBytes != 0 {
		t.Fatalf("kernel copies = %d, want 0 (near-zero copy violated)", report.Usage.KernelCopyBytes)
	}
	if report.Usage.UserCopyBytes != n {
		t.Fatalf("user copies = %d, want %d", report.Usage.UserCopyBytes, n)
	}
	if report.Breakdown.Serialization != 0 {
		t.Fatal("network mode serialized")
	}
	// Modeled wire time for 2 MB at 100 Mbps is 160 ms.
	if report.Breakdown.Network < 150_000_000 || report.Breakdown.Network > 170_000_000 {
		t.Fatalf("network time = %v", report.Breakdown.Network)
	}
	if link.Carried() != n {
		t.Fatalf("link carried %d", link.Carried())
	}
}

// TestAlgorithm1SyscallTrace pins the syscall sequence of network transfers
// to Algorithm 1's structure across the channel-cache lifecycle. Cold (first
// transfer of a pair): connect, hose creation, one vmsplice+splice pair per
// chunk on the source, splice+readrefs per chunk on the target — teardown
// belongs to channel eviction, not the transfer. Warm: the per-chunk data
// plane only, zero connect/pipe syscalls. NoChannelCache: the paper's
// original per-call trace including close_all.
func TestAlgorithm1SyscallTrace(t *testing.T) {
	k1, k2 := kernel.New("edge"), kernel.New("cloud")
	s1, err := core.NewShim(core.ShimConfig{
		Name: "s1", Workflow: wf, Kernel: k1, Module: guest.Module(),
		DataHoseBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := core.NewShim(core.ShimConfig{
		Name: "s2", Workflow: wf, Kernel: k2, Module: guest.Module(),
		DataHoseBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")

	const n = 3 << 20 // exactly 3 hose-sized chunks
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	trace := func(opts core.NetworkOptions) (metrics.Usage, metrics.Usage) {
		srcBefore := s1.Account().Snapshot()
		dstBefore := s2.Account().Snapshot()
		ref, _, err := core.NetworkTransfer(fa, fb, opts)
		if err != nil {
			t.Fatal(err)
		}
		verifyDelivery(t, fb, ref, n)
		return s1.Account().Snapshot().Sub(srcBefore), s2.Account().Snapshot().Sub(dstBefore)
	}

	// Cold: connect(1) + pipe(1) + per chunk (vmsplice 1 + splice 1)*3 = 8
	// on the source; connect(1) + pipe(1) + (splice 1 + readrefs 1)*3 = 8
	// on the target. No per-call teardown — the hose persists.
	src, dst := trace(core.NetworkOptions{})
	if src.Syscalls != 8 || dst.Syscalls != 8 {
		t.Fatalf("cold syscalls = %d/%d, want 8/8", src.Syscalls, dst.Syscalls)
	}
	if src.TotalCopyBytes() != 0 {
		t.Fatalf("source copied %d bytes, want 0", src.TotalCopyBytes())
	}
	if dst.KernelCopyBytes != 0 || dst.UserCopyBytes != n {
		t.Fatalf("target copies = %d kernel / %d user", dst.KernelCopyBytes, dst.UserCopyBytes)
	}

	// Warm: only the per-chunk data plane — (vmsplice+splice)*3 = 6 on the
	// source, (splice+readrefs)*3 = 6 on the target; the warm path issues
	// zero connect/pipe/close syscalls while moving identical bytes.
	src, dst = trace(core.NetworkOptions{})
	if src.Syscalls != 6 || dst.Syscalls != 6 {
		t.Fatalf("warm syscalls = %d/%d, want 6/6", src.Syscalls, dst.Syscalls)
	}
	if src.TotalCopyBytes() != 0 || dst.KernelCopyBytes != 0 || dst.UserCopyBytes != n {
		t.Fatalf("warm copies: src=%d dstKernel=%d dstUser=%d", src.TotalCopyBytes(), dst.KernelCopyBytes, dst.UserCopyBytes)
	}

	// NoChannelCache: the original per-call trace, teardown included —
	// 8 + close rfd, wfd, cfd (3) = 11 per side.
	src, dst = trace(core.NetworkOptions{NoChannelCache: true})
	if src.Syscalls != 11 || dst.Syscalls != 11 {
		t.Fatalf("uncached syscalls = %d/%d, want 11/11", src.Syscalls, dst.Syscalls)
	}
}

func TestNetworkTransferValidations(t *testing.T) {
	k := kernel.New("n1")
	s1, s2 := newShim(t, "s1", k), newShim(t, "s2", k)
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
	if _, _, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{}); !errors.Is(err, core.ErrSameNode) {
		t.Fatalf("same-node network transfer = %v", err)
	}
	fc := addFn(t, s1, "c")
	if _, _, err := core.NetworkTransfer(fa, fc, core.NetworkOptions{}); !errors.Is(err, core.ErrSameVM) {
		t.Fatalf("same-VM network transfer = %v", err)
	}
}

func TestNetworkTransferCopyPathAblation(t *testing.T) {
	k1, k2 := kernel.New("n1"), kernel.New("n2")
	s1, s2 := newShim(t, "s1", k1), newShim(t, "s2", k2)
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")

	const n = 1_000_000
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	ref, report, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{ForceCopyPath: true})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, fb, ref, n)
	// Copy path: payload crosses user→kernel and kernel→user.
	if report.Usage.KernelCopyBytes != 2*n {
		t.Fatalf("kernel copies = %d, want %d", report.Usage.KernelCopyBytes, 2*n)
	}
}

func TestNetworkTransferSerializeAblation(t *testing.T) {
	k1, k2 := kernel.New("n1"), kernel.New("n2")
	s1, s2 := newShim(t, "s1", k1), newShim(t, "s2", k2)
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")

	const n = 200_000
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	ref, report, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{SerializeFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, fb, ref, n)
	if report.Breakdown.Serialization <= 0 {
		t.Fatal("serialization ablation did not measure codec time")
	}
	// Serialized bytes on the wire exceed the raw payload.
	if report.Bytes <= n {
		t.Fatalf("wire bytes = %d, want > %d", report.Bytes, n)
	}
}

func TestSendToHostRegistersOutput(t *testing.T) {
	k := kernel.New("n1")
	s := newShim(t, "s", k)
	fa, fb := addFn(t, s, "a"), addFn(t, s, "b")
	const n = 10_000
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	// send_output announces the region via the send_to_host import.
	if _, err := fa.Call(guest.ExportSendOutput); err != nil {
		t.Fatal(err)
	}
	out, err := fa.Output()
	if err != nil || out.Len != n {
		t.Fatalf("output after send_to_host = %+v, %v", out, err)
	}
	ref, _, err := core.UserSpaceTransfer(fa, fb, core.UserOptions{})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, fb, ref, n)
}

func TestChainedTransfersAcrossModes(t *testing.T) {
	// a --user--> b --kernel--> c --network--> d, verifying payload
	// integrity through all three mechanisms chained.
	k1, k2 := kernel.New("edge"), kernel.New("cloud")
	s1 := newShim(t, "s1", k1)
	s2 := newShim(t, "s2", k1)
	s3 := newShim(t, "s3", k2)
	fa, fb := addFn(t, s1, "a"), addFn(t, s1, "b")
	fc := addFn(t, s2, "c")
	fd := addFn(t, s3, "d")

	const n = 100_000
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.UserSpaceTransfer(fa, fb, core.UserOptions{}); err != nil {
		t.Fatal(err)
	}
	// b's inbound data becomes its output for the next hop: re-register
	// via set_output.
	refB, _, err := core.UserSpaceTransfer(fa, fb, core.UserOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fb.Call("set_output", uint64(refB.Ptr), uint64(refB.Len)); err != nil {
		t.Fatal(err)
	}
	refC, _, err := core.KernelSpaceTransfer(fb, fc, core.KernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Call("set_output", uint64(refC.Ptr), uint64(refC.Len)); err != nil {
		t.Fatal(err)
	}
	refD, _, err := core.NetworkTransfer(fc, fd, core.NetworkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, fd, refD, n)
}

func TestHoseLeavesNoResidentPages(t *testing.T) {
	k1, k2 := kernel.New("n1"), kernel.New("n2")
	s1, s2 := newShim(t, "s1", k1), newShim(t, "s2", k2)
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
	if _, err := fa.CallPacked(guest.ExportProduce, 512*1024); err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{}); err != nil {
		t.Fatal(err)
	}
	if res := k1.Pool().Resident() + k2.Pool().Resident(); res != 0 {
		t.Fatalf("leaked %d resident kernel bytes", res)
	}
	_ = pagebuf.PageSize
}

// TestSyscallBatchingExtension verifies the §9 future-work extension: the
// batched network path moves the identical payload with far fewer kernel
// entries while keeping the zero-copy property.
func TestSyscallBatchingExtension(t *testing.T) {
	run := func(batch bool) (int64, int64) {
		k1, k2 := kernel.New("edge"), kernel.New("cloud")
		s1 := newShim(t, "s1", k1)
		s2 := newShim(t, "s2", k2)
		fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
		const n = 8 << 20
		if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			t.Fatal(err)
		}
		ref, rep, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{BatchSyscalls: batch})
		if err != nil {
			t.Fatal(err)
		}
		verifyDelivery(t, fb, ref, n)
		if rep.Usage.KernelCopyBytes != 0 {
			t.Fatalf("batching broke zero-copy: %d kernel bytes", rep.Usage.KernelCopyBytes)
		}
		return rep.Usage.Syscalls, rep.Bytes
	}
	plain, _ := run(false)
	batched, _ := run(true)
	if batched >= plain {
		t.Fatalf("batched syscalls = %d, plain = %d", batched, plain)
	}
	if batched > plain/2 {
		t.Fatalf("batching saved too little: %d vs %d", batched, plain)
	}
}

func TestBatchingAccountsOps(t *testing.T) {
	k := kernel.New("n")
	acct := s1Acct(t, k)
	_ = acct
}

// s1Acct exercises Begin/EndBatch directly.
func s1Acct(t *testing.T, k *kernel.Kernel) *kernel.Proc {
	t.Helper()
	p := k.NewProc("p", nil)
	t.Cleanup(p.CloseAll)
	p.BeginBatch()
	rfd, wfd := p.Pipe()
	if _, err := p.Write(wfd, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := p.Read(rfd, buf); err != nil {
		t.Fatal(err)
	}
	if ops := p.EndBatch(); ops != 3 { // pipe + write + read
		t.Fatalf("batched ops = %d, want 3", ops)
	}
	if ops := p.EndBatch(); ops != 0 {
		t.Fatalf("empty batch ops = %d", ops)
	}
	return p
}
