package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
)

// ErrNoState is returned when a state key does not exist for the requesting
// workflow.
var ErrNoState = errors.New("core: no such state entry")

// StateStore implements the function state management the paper lists as
// future work (§9 "we aim to introduce function state management"): a
// shim-side short-term store that lets stateless functions persist named
// byte payloads across invocations — the GoldFish/Faasm-style pattern the
// related work discusses — without a remote storage service.
//
// Isolation follows the paper's trust model (§3.1): entries are scoped to
// (workflow, tenant), and all access is mediated by the shim through the
// same registered-region discipline as inter-function transfers, so a
// function can never read another workflow's state.
type StateStore struct {
	mu      sync.Mutex
	entries map[stateKey]stateEntry
}

type stateKey struct {
	workflow Workflow
	name     string
}

// stateEntry carries the snapshot plus the sandbox account it was charged
// to, so deletion (or overwrite by another replica instance) credits the
// resident bytes back to the account that paid for them — not to whichever
// instance happens to issue the delete.
type stateEntry struct {
	data []byte
	acct *metrics.Account
}

// NewStateStore returns an empty store.
func NewStateStore() *StateStore {
	return &StateStore{entries: make(map[stateKey]stateEntry)}
}

// Put snapshots the function's current output region under the given key.
// The payload is copied out of linear memory (the guest heap is transient
// between invocations), charged as one user-space copy and as resident
// bytes to the function's sandbox; the residency is released on Delete or
// when another Put replaces the entry.
func (s *StateStore) Put(f *Function, name string) error {
	f.shim.mu.Lock()
	defer f.shim.mu.Unlock()
	out, err := f.locateQuiet()
	if err != nil {
		return fmt.Errorf("state put %q: %w", name, err)
	}
	view, err := f.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return fmt.Errorf("state put %q: %w", name, err)
	}
	snapshot := make([]byte, len(view))
	copy(snapshot, view)
	f.shim.acct.Copy(metrics.User, len(snapshot))
	f.shim.acct.Allocate(int64(len(snapshot)))

	key := stateKey{workflow: f.shim.workflow, name: name}
	s.mu.Lock()
	old, existed := s.entries[key]
	s.entries[key] = stateEntry{data: snapshot, acct: f.shim.acct}
	s.mu.Unlock()
	if existed {
		old.acct.Allocate(int64(-len(old.data)))
	}
	return nil
}

// Get delivers a stored payload into the function's linear memory
// (allocate_memory + write_memory_host) and returns its location. Only
// entries of the function's own workflow/tenant are visible.
func (s *StateStore) Get(f *Function, name string) (InboundRef, error) {
	key := stateKey{workflow: f.shim.workflow, name: name}
	s.mu.Lock()
	entry, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return InboundRef{}, fmt.Errorf("%q in workflow %q: %w", name, f.shim.workflow.Name, ErrNoState)
	}
	data := entry.data
	f.shim.mu.Lock()
	defer f.shim.mu.Unlock()
	ptr, err := f.view.Allocate(uint32(len(data)))
	if err != nil {
		return InboundRef{}, fmt.Errorf("state get %q: %w", name, err)
	}
	if err := f.view.Write(data, ptr); err != nil {
		// The entry never landed; hand the region back so a failed Get
		// leaves the requesting function's linear memory at baseline.
		if derr := f.view.Deallocate(ptr); derr != nil {
			err = errors.Join(err, derr)
		}
		return InboundRef{}, fmt.Errorf("state get %q: %w", name, err)
	}
	return InboundRef{Ptr: ptr, Len: uint32(len(data))}, nil
}

// Delete removes an entry, crediting its resident bytes back to the sandbox
// account that stored it; deleting a missing key is a no-op.
func (s *StateStore) Delete(wf Workflow, name string) {
	key := stateKey{workflow: wf, name: name}
	s.mu.Lock()
	entry, ok := s.entries[key]
	delete(s.entries, key)
	s.mu.Unlock()
	if ok {
		entry.acct.Allocate(int64(-len(entry.data)))
	}
}

// Keys lists the entry names visible to a workflow, sorted.
func (s *StateStore) Keys(wf Workflow) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for k := range s.entries {
		if k.workflow == wf {
			names = append(names, k.name)
		}
	}
	sort.Strings(names)
	return names
}

// Size reports total stored bytes across all workflows.
func (s *StateStore) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, entry := range s.entries {
		n += int64(len(entry.data))
	}
	return n
}
