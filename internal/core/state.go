package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
)

// ErrNoState is returned when a state key does not exist for the requesting
// workflow.
var ErrNoState = errors.New("core: no such state entry")

// StateStore implements the function state management the paper lists as
// future work (§9 "we aim to introduce function state management"): a
// shim-side short-term store that lets stateless functions persist named
// byte payloads across invocations — the GoldFish/Faasm-style pattern the
// related work discusses — without a remote storage service.
//
// Isolation follows the paper's trust model (§3.1): entries are scoped to
// (workflow, tenant), and all access is mediated by the shim through the
// same registered-region discipline as inter-function transfers, so a
// function can never read another workflow's state.
type StateStore struct {
	mu      sync.Mutex
	entries map[stateKey][]byte
}

type stateKey struct {
	workflow Workflow
	name     string
}

// NewStateStore returns an empty store.
func NewStateStore() *StateStore {
	return &StateStore{entries: make(map[stateKey][]byte)}
}

// Put snapshots the function's current output region under the given key.
// The payload is copied out of linear memory (the guest heap is transient
// between invocations), charged as one user-space copy to the function's
// sandbox.
func (s *StateStore) Put(f *Function, name string) error {
	f.shim.mu.Lock()
	defer f.shim.mu.Unlock()
	out, err := f.locateQuiet()
	if err != nil {
		return fmt.Errorf("state put %q: %w", name, err)
	}
	view, err := f.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return fmt.Errorf("state put %q: %w", name, err)
	}
	snapshot := make([]byte, len(view))
	copy(snapshot, view)
	f.shim.acct.Copy(metrics.User, len(snapshot))
	f.shim.acct.Allocate(int64(len(snapshot)))

	key := stateKey{workflow: f.shim.workflow, name: name}
	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		f.shim.acct.Allocate(int64(-len(old)))
	}
	s.entries[key] = snapshot
	s.mu.Unlock()
	return nil
}

// Get delivers a stored payload into the function's linear memory
// (allocate_memory + write_memory_host) and returns its location. Only
// entries of the function's own workflow/tenant are visible.
func (s *StateStore) Get(f *Function, name string) (InboundRef, error) {
	key := stateKey{workflow: f.shim.workflow, name: name}
	s.mu.Lock()
	data, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return InboundRef{}, fmt.Errorf("%q in workflow %q: %w", name, f.shim.workflow.Name, ErrNoState)
	}
	f.shim.mu.Lock()
	defer f.shim.mu.Unlock()
	ptr, err := f.view.Allocate(uint32(len(data)))
	if err != nil {
		return InboundRef{}, fmt.Errorf("state get %q: %w", name, err)
	}
	if err := f.view.Write(data, ptr); err != nil {
		return InboundRef{}, fmt.Errorf("state get %q: %w", name, err)
	}
	return InboundRef{Ptr: ptr, Len: uint32(len(data))}, nil
}

// Delete removes an entry; deleting a missing key is a no-op.
func (s *StateStore) Delete(wf Workflow, name string) {
	s.mu.Lock()
	delete(s.entries, stateKey{workflow: wf, name: name})
	s.mu.Unlock()
}

// Keys lists the entry names visible to a workflow, sorted.
func (s *StateStore) Keys(wf Workflow) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for k := range s.entries {
		if k.workflow == wf {
			names = append(names, k.name)
		}
	}
	sort.Strings(names)
	return names
}

// Size reports total stored bytes across all workflows.
func (s *StateStore) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, data := range s.entries {
		n += int64(len(data))
	}
	return n
}
