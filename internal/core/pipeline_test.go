// Tests for the staged data-plane pipeline: stage-scoped VM locking,
// overlapped source/target stages, streaming chains over shared interior
// functions, and the phase-locked ablation's trace equivalence.
package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/core"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
)

// TestInteriorVMFreeDuringWireStage pins the pipeline's headline property:
// while a transfer's payload is in flight on the wire — egress done or
// draining, ingress gated — NEITHER endpoint VM lock is held, so the target
// VM accepts an unrelated transfer mid-flight. Under the phase-locked
// regime the same interleaving would deadlock the unrelated transfer until
// the first one finished.
func TestInteriorVMFreeDuringWireStage(t *testing.T) {
	kEdge, kCloud := kernel.New("edge"), kernel.New("cloud")
	sA := newShim(t, "sA", kEdge)
	sB := newShim(t, "sB", kCloud)
	sX := newShim(t, "sX", kCloud)
	fa := addFn(t, sA, "a")
	fb := addFn(t, sB, "b")
	fb2 := addFn(t, sB, "b2") // second function in the interior VM
	fx := addFn(t, sX, "x")

	const n = 256 << 10
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.CallPacked(guest.ExportProduce, uint64(n+128)); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	started := make(chan struct{})
	type result struct {
		ref core.InboundRef
		err error
	}
	wireRes := make(chan result, 1)
	go func() {
		ref, _, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{
			Gates: &core.PipelineGates{BeforeIngress: func() {
				close(started)
				<-gate
			}},
		})
		wireRes <- result{ref, err}
	}()
	<-started

	// The a→b transfer is now held in its wire stage: payload queued in the
	// channel, ingress not yet started, no VM lock held. An unrelated
	// kernel-space transfer into the same target VM must complete.
	unrelated := make(chan result, 1)
	go func() {
		ref, _, err := core.KernelSpaceTransfer(fx, fb2, core.KernelOptions{})
		unrelated <- result{ref, err}
	}()
	select {
	case r := <-unrelated:
		if r.err != nil {
			t.Fatalf("unrelated transfer during wire stage: %v", r.err)
		}
		verifyDelivery(t, fb2, r.ref, n+128)
	case <-time.After(10 * time.Second):
		t.Fatal("unrelated transfer blocked: interior VM lock held during wire stage")
	}

	close(gate)
	r := <-wireRes
	if r.err != nil {
		t.Fatalf("gated transfer: %v", r.err)
	}
	verifyDelivery(t, fb, r.ref, n)
}

// TestConcurrentSharedInteriorChains is the stage-scoped-locking stress
// test: M streaming chains A_i → B → C_i → D_i run concurrently for several
// rounds, all of them sharing the interior function B. Each hop pins its
// input region (SourceRef), so set_output + locate are atomic with the
// egress and the chains stay linearizable. Asserts per-delivery checksum
// conservation, and that file-descriptor tables and the kernels' page pools
// return to their post-warmup baselines when the chains finish.
func TestConcurrentSharedInteriorChains(t *testing.T) {
	const (
		chains  = 4
		rounds  = 6
		payload = 96 << 10
	)
	kEdge, kCloud := kernel.New("edge"), kernel.New("cloud")
	sB := newShim(t, "sB", kEdge)
	fb := addFn(t, sB, "b")
	shims := []*core.Shim{sB}
	srcs := make([]*core.Function, chains)
	mids := make([]*core.Function, chains)
	sinks := make([]*core.Function, chains)
	for i := 0; i < chains; i++ {
		sA := newShim(t, fmt.Sprintf("sA%d", i), kEdge)
		sC := newShim(t, fmt.Sprintf("sC%d", i), kCloud)
		sD := newShim(t, fmt.Sprintf("sD%d", i), kCloud)
		shims = append(shims, sA, sC, sD)
		srcs[i] = addFn(t, sA, fmt.Sprintf("a%d", i))
		mids[i] = addFn(t, sC, fmt.Sprintf("c%d", i))
		sinks[i] = addFn(t, sD, fmt.Sprintf("d%d", i))
	}

	// One chain execution: produce at the head, kernel hop into the shared
	// B, network hop out of it, kernel hop to the sink. Returns the
	// per-function inbound regions so the round can release them.
	runChain := func(i, n int) (map[*core.Function]core.InboundRef, error) {
		regions := make(map[*core.Function]core.InboundRef, 3)
		if _, err := srcs[i].CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			return regions, fmt.Errorf("produce: %w", err)
		}
		refB, _, err := core.KernelSpaceTransfer(srcs[i], fb, core.KernelOptions{})
		if err != nil {
			return regions, fmt.Errorf("hop a->B: %w", err)
		}
		regions[fb] = refB
		srcRefB := core.OutputRef{Ptr: refB.Ptr, Len: refB.Len}
		refC, _, err := core.NetworkTransfer(fb, mids[i], core.NetworkOptions{SourceRef: &srcRefB})
		if err != nil {
			return regions, fmt.Errorf("hop B->c: %w", err)
		}
		regions[mids[i]] = refC
		srcRefC := core.OutputRef{Ptr: refC.Ptr, Len: refC.Len}
		refD, _, err := core.KernelSpaceTransfer(mids[i], sinks[i], core.KernelOptions{SourceRef: &srcRefC})
		if err != nil {
			return regions, fmt.Errorf("hop c->d: %w", err)
		}
		regions[sinks[i]] = refD
		verifyDelivery(t, sinks[i], refD, n)
		return regions, nil
	}

	// Warmup round: establishes every pair's cached channel, so the FD
	// baseline below includes the persistent hoses.
	for i := 0; i < chains; i++ {
		regions, err := runChain(i, payload+i)
		if err != nil {
			t.Fatalf("warmup chain %d: %v", i, err)
		}
		releaseRound(t, regions, srcs[i])
	}
	fdBaseline := make([]int, len(shims))
	for i, s := range shims {
		fdBaseline[i] = s.Proc().NumFDs()
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		roundRegions := make([]map[*core.Function]core.InboundRef, chains)
		errs := make([]error, chains)
		for i := 0; i < chains; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				// Distinct payload sizes per chain, so a cross-delivered
				// payload can never produce the right checksum.
				roundRegions[i], errs[i] = runChain(i, payload+i)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d chain %d: %v", round, i, err)
			}
		}
		// Joined: no region is in flight, so the guest bump heaps rewind.
		// The shared B collected one region per chain; releasing the lowest
		// frees them all (LIFO heap).
		for i := 0; i < chains; i++ {
			releaseRound(t, roundRegions[i], srcs[i])
		}
	}

	for i, s := range shims {
		if got := s.Proc().NumFDs(); got != fdBaseline[i] {
			t.Fatalf("shim %s holds %d FDs, baseline %d", s.Name(), got, fdBaseline[i])
		}
	}
	if res := kEdge.Pool().Resident() + kCloud.Pool().Resident(); res != 0 {
		t.Fatalf("%d resident kernel pool bytes leaked", res)
	}
}

// releaseRound returns one chain execution's regions to the guest
// allocators: the head's produce region plus, per function, the
// lowest-addressed inbound region (the bump allocator rewinds everything at
// or above it).
func releaseRound(t *testing.T, regions map[*core.Function]core.InboundRef, head *core.Function) {
	t.Helper()
	if out, err := head.Output(); err == nil {
		if err := head.Deallocate(out.Ptr); err != nil {
			t.Fatalf("release head: %v", err)
		}
	}
	for f, ref := range regions {
		if err := f.Deallocate(ref.Ptr); err != nil {
			t.Fatalf("release %s: %v", f.Name(), err)
		}
	}
}

// TestPhaseLockedMatchesPipelinedTrace pins the ablation contract: the
// pipelined and phase-locked regimes issue the identical syscall sequence
// and copy volume on every cross-sandbox mode, cold and warm — pipelining
// moves when work happens, never how much.
func TestPhaseLockedMatchesPipelinedTrace(t *testing.T) {
	const n = 3 << 20
	type trace struct {
		srcSys, dstSys   int64
		srcCopy, dstCopy int64
	}
	measure := func(t *testing.T, network, phaseLocked bool) []trace {
		mkKernel := kernel.New("edge")
		dstKernel := mkKernel
		if network {
			dstKernel = kernel.New("cloud")
		}
		s1, err := core.NewShim(core.ShimConfig{
			Name: "s1", Workflow: wf, Kernel: mkKernel, Module: guest.Module(), DataHoseBytes: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s1.Close)
		s2, err := core.NewShim(core.ShimConfig{
			Name: "s2", Workflow: wf, Kernel: dstKernel, Module: guest.Module(), DataHoseBytes: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s2.Close)
		fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
		if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			t.Fatal(err)
		}
		var traces []trace
		for round := 0; round < 2; round++ { // cold then warm
			sb, db := s1.Account().Snapshot(), s2.Account().Snapshot()
			var ref core.InboundRef
			if network {
				ref, _, err = core.NetworkTransfer(fa, fb, core.NetworkOptions{PhaseLocked: phaseLocked})
			} else {
				ref, _, err = core.KernelSpaceTransfer(fa, fb, core.KernelOptions{PhaseLocked: phaseLocked})
			}
			if err != nil {
				t.Fatal(err)
			}
			verifyDelivery(t, fb, ref, n)
			sd := s1.Account().Snapshot().Sub(sb)
			dd := s2.Account().Snapshot().Sub(db)
			traces = append(traces, trace{
				srcSys: sd.Syscalls, dstSys: dd.Syscalls,
				srcCopy: sd.TotalCopyBytes(), dstCopy: dd.TotalCopyBytes(),
			})
		}
		return traces
	}
	for _, mode := range []string{"kernel", "network"} {
		t.Run(mode, func(t *testing.T) {
			pipelined := measure(t, mode == "network", false)
			locked := measure(t, mode == "network", true)
			for i := range pipelined {
				if pipelined[i] != locked[i] {
					t.Fatalf("round %d: pipelined trace %+v != phase-locked trace %+v", i, pipelined[i], locked[i])
				}
			}
		})
	}
}

// TestPhaseLockedMulticastDelivers is the regression test for the
// phase-locked multicast self-deadlock: lockShims already holds the source
// VM lock, so the source stage must not re-acquire it. The call has to
// complete (not hang) and deliver checksum-clean payloads with zero
// overlap reported.
func TestPhaseLockedMulticastDelivers(t *testing.T) {
	kSrc := kernel.New("edge")
	sSrc := newShim(t, "src", kSrc)
	src := addFn(t, sSrc, "src")
	const degree, n = 3, 300_000
	dsts := make([]*core.Function, degree)
	for i := range dsts {
		sd := newShim(t, fmt.Sprintf("t%d", i), kernel.New(fmt.Sprintf("cloud-%d", i)))
		dsts[i] = addFn(t, sd, fmt.Sprintf("f%d", i))
	}
	if _, err := src.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	type result struct {
		refs    []core.InboundRef
		reports []metrics.TransferReport
		err     error
	}
	done := make(chan result, 1)
	go func() {
		refs, reports, err := core.MulticastTransfer(src, dsts, core.MulticastOptions{PhaseLocked: true})
		done <- result{refs, reports, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		for i, dst := range dsts {
			verifyDelivery(t, dst, r.refs[i], n)
			if r.reports[i].Breakdown.Overlap != 0 {
				t.Fatalf("target %d: phase-locked overlap = %v", i, r.reports[i].Breakdown.Overlap)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("phase-locked multicast deadlocked")
	}
}

// TestPipelineOverlapAttribution: a multi-chunk pipelined network transfer
// reports a positive Overlap component (the stages genuinely ran
// concurrently) and a critical-path latency below the summed component
// laps; the phase-locked regime reports exactly zero overlap.
func TestPipelineOverlapAttribution(t *testing.T) {
	run := func(phaseLocked bool) time.Duration {
		k1, k2 := kernel.New("edge"), kernel.New("cloud")
		s1, err := core.NewShim(core.ShimConfig{
			Name: "s1", Workflow: wf, Kernel: k1, Module: guest.Module(), DataHoseBytes: 256 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s1.Close)
		s2, err := core.NewShim(core.ShimConfig{
			Name: "s2", Workflow: wf, Kernel: k2, Module: guest.Module(), DataHoseBytes: 256 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s2.Close)
		fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
		const n = 4 << 20 // 16 hose chunks
		if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			t.Fatal(err)
		}
		ref, rep, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{PhaseLocked: phaseLocked})
		if err != nil {
			t.Fatal(err)
		}
		verifyDelivery(t, fb, ref, n)
		if got := rep.Breakdown.Total(); got > rep.Breakdown.Setup+rep.Breakdown.Transfer+rep.Breakdown.WasmIO {
			t.Fatalf("critical path %v exceeds summed laps", got)
		}
		return rep.Breakdown.Overlap
	}
	if overlap := run(true); overlap != 0 {
		t.Fatalf("phase-locked transfer reported overlap %v", overlap)
	}
	if overlap := run(false); overlap <= 0 {
		t.Fatalf("pipelined multi-chunk transfer reported no overlap (%v)", overlap)
	}
}
