package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/pagebuf"
)

// MulticastOptions tunes a multicast transfer.
type MulticastOptions struct {
	// Ctx cancels the fan-out; nil means never cancelled. Cancellation is
	// observed at entry, at every chunk of the source tee pass, and at the
	// start and every chunk of each target drain; an aborted fan-out
	// destroys its channels (draining stranded pages) like other failures.
	Ctx context.Context
	// Links models the network path per target; a nil slice (or nil entry)
	// attributes no wire time — same-node targets always get a nil entry.
	// When set, len(Links) must equal the number of targets. Targets on
	// different links are modeled independently — a slow edge uplink no
	// longer taxes targets reached over a fast one.
	Links []*netsim.Link
	// Flows overrides, per target, the number of concurrent flows sharing
	// that target's link. Entries <= 0 (or a nil slice) default to the
	// number of multicast targets whose Links entry is the same link.
	// When set, len(Flows) must equal the number of targets.
	Flows []int
	// NoChannelCache forces per-call channel establishment and teardown
	// (the cold-path ablation), as in NetworkOptions.
	NoChannelCache bool
	// PhaseLocked runs the fan-out in the pre-pipeline regime: every
	// participating VM locked for the whole operation, targets drained
	// strictly after the source pass and strictly one after another.
	PhaseLocked bool
	// SourceRef pins the source region (see UserOptions.SourceRef).
	SourceRef *OutputRef
	// Gates carries test instrumentation (see PipelineGates); BeforeIngress
	// runs once per target drain.
	Gates *PipelineGates
}

// multicastDrain is one target stage's outcome.
type multicastDrain struct {
	ref InboundRef
	bd  metrics.Breakdown
	err error
}

// MulticastTransfer delivers the source's output to several targets from a
// single pass over the virtual data hose — an extension of Algorithm 1 for
// the paper's fan-out pattern (§6.4). Instead of re-running the source
// pipeline per target, each hose chunk is vmspliced once and then
// tee(2)-duplicated into every target's channel (the last target takes the
// pages by splice): page references are shared, so the source side performs
// zero payload copies regardless of fan-out degree.
//
// Targets may live anywhere except inside the source's own VM. A target
// co-located on the source's node receives through the same-node socketpair
// channel (§4.2): its drain pops the teed page references straight off its
// socket into linear memory, no hose pipes and no wire — the cheapest legs
// of a fan-out. A cross-node target receives over the network channel's
// target hose as in unicast Algorithm 1. Mixed sets split naturally: one
// tee group feeds same-node sockets and per-link connections from the same
// source pass. The tee pass runs over the first cross-node channel's source
// hose; an all-local fan-out creates a per-call hose pipe instead, closed
// (and drained) by the transfer itself.
//
// Like the unicast paths, the fan-out runs as a staged pipeline: the source
// VM is locked only for the tee pass, and each target drains its own
// channel under its own VM lock, all targets in parallel, overlapping the
// source pass.
func MulticastTransfer(src *Function, dsts []*Function, opts MulticastOptions) ([]InboundRef, []metrics.TransferReport, error) {
	if len(dsts) == 0 {
		return nil, nil, fmt.Errorf("core: multicast requires targets")
	}
	if opts.Links != nil && len(opts.Links) != len(dsts) {
		return nil, nil, fmt.Errorf("core: multicast got %d links for %d targets", len(opts.Links), len(dsts))
	}
	if opts.Flows != nil && len(opts.Flows) != len(dsts) {
		return nil, nil, fmt.Errorf("core: multicast got %d flow counts for %d targets", len(opts.Flows), len(dsts))
	}
	srcShim := src.shim
	local := make([]bool, len(dsts))
	for i, dst := range dsts {
		if dst.shim == srcShim {
			return nil, nil, ErrSameVM
		}
		local[i] = dst.shim.Kernel() == srcShim.Kernel()
	}
	chanKindFor := func(ds *Shim) chanKind {
		if ds.Kernel() == srcShim.Kernel() {
			return chanKernel
		}
		return chanNetwork
	}

	// Pair locks, one per distinct target shim — the socketpair kind for
	// co-located shims, the network kind otherwise, matching the locks the
	// unicast paths take so a fan-out leg serializes with unicast transfers
	// of the same pair — acquired in ascending shim creation order: the
	// same global order lockShims uses, which keeps overlapping multicasts
	// from one source deadlock-free. They are taken before any VM lock, per
	// the pipeline's lock order.
	dstShims := make([]*Shim, len(dsts))
	for i, dst := range dsts {
		dstShims[i] = dst.shim
	}
	for _, ds := range distinctBySeq(dstShims) {
		m := srcShim.pairLock(ds, chanKindFor(ds))
		m.Lock()
		defer m.Unlock()
	}
	// First cancellation point: abort before acquiring channels or VM locks.
	if err := CtxErr(opts.Ctx); err != nil {
		return nil, nil, err
	}
	if opts.PhaseLocked {
		all := make([]*Shim, 0, len(dsts)+1)
		all = append(all, srcShim)
		for _, dst := range dsts {
			all = append(all, dst.shim)
		}
		locked := lockShims(all...)
		defer unlockShims(locked)
	}
	beforeSrc := srcShim.acct.Snapshot()
	beforeDst := make([]metrics.Usage, len(dsts))
	for i, dst := range dsts {
		beforeDst[i] = dst.shim.acct.Snapshot()
	}

	// One channel per target, cached per shim pair like the unicast paths:
	// connection + target hose for cross-node targets, the IPC socketpair
	// for same-node ones. Two targets inside one shim would collide on the
	// pair's cached channel, so duplicates of an already acquired shim fall
	// back to per-call channels. The first cross-node channel's source hose
	// doubles as the shared multicast hose.
	swSetup := metrics.NewStopwatch(srcShim.now)
	chans := make([]*channel, len(dsts))
	setups := make([]time.Duration, len(dsts))
	seen := make(map[*Shim]bool, len(dsts))
	healthy := false
	dataStarted := false
	hoseR, hoseW := -1, -1
	ownHose := false
	defer func() {
		if ownHose {
			// The per-call hose always tears down — control-plane closes are
			// never fault-intercepted, and closing the read end drains any
			// pages a failed tee pass stranded back to their pool.
			_ = srcShim.proc.Close(hoseW)
			_ = srcShim.proc.Close(hoseR)
		}
		for _, c := range chans {
			if c == nil {
				continue
			}
			c.unpin()
			// Ephemeral (per-call or duplicate-shim) channels always tear
			// down. Cached ones are destroyed only when the transfer failed
			// after payload started moving — then any channel may hold
			// stranded pages; failures before the first vmsplice leave all
			// channels pristine and warm.
			if !c.cached || (!healthy && dataStarted) {
				c.destroy()
			}
		}
	}()
	for i, dst := range dsts {
		var hit bool
		var err error
		kind := chanKindFor(dst.shim)
		if opts.NoChannelCache || seen[dst.shim] {
			// Ephemeral channels skip the source hose except for the first
			// cross-node one, which supplies the fan-out's shared tee hose —
			// per-call multicast then issues exactly the pre-cache trace:
			// one source hose plus connection + target hose per target.
			if kind == chanNetwork && hoseR >= 0 {
				kind = chanNetworkTarget
			}
			chans[i], err = establishChannel(srcShim, dst.shim, kind)
		} else {
			// acquireChannel returns the channel pinned, shielding it from
			// eviction by this fan-out's own later acquisitions (and by
			// concurrent transfers of other pairs) until the deferred unpin.
			chans[i], hit, err = srcShim.acquireChannel(dst.shim, kind)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("multicast channel to %s: %w", dst.name, err)
		}
		seen[dst.shim] = true
		if hoseR < 0 && chans[i].kind == chanNetwork {
			hoseR, hoseW = chans[i].rfd, chans[i].wfd
		}
		if !hit {
			setups[i] = swSetup.Lap()
		} else {
			swSetup.Lap()
		}
	}
	if hoseR < 0 {
		// All targets are same-node: no network channel supplies a source
		// hose, so the tee pass runs over a per-call pipe owned (and always
		// closed) by this transfer — see the deferred teardown above.
		hoseR, hoseW = srcShim.proc.PipeSized(srcShim.hoseCap)
		ownHose = true
		setups[0] += swSetup.Lap()
	}
	var setupTotal time.Duration
	for _, d := range setups {
		setupTotal += d
	}
	srcShim.acct.CPU(metrics.Kernel, setupTotal)

	// Target stages: spawned before the source pass so the drains overlap
	// it, each waiting for the announced output size. Targets sharing a
	// shim serialize naturally on its VM lock. Phase-locked runs them
	// inline after the source pass instead. Same-node targets drain their
	// socketpair end directly; cross-node ones run the Algorithm 1 ingress
	// over their target hose.
	var (
		out       OutputRef
		srcWasmIO time.Duration
		sendT     time.Duration
		announced bool
	)
	drainTarget := func(i int, dst *Function) (InboundRef, metrics.Breakdown, error) {
		if local[i] {
			return receiveFromPair(dst, chans[i], out.Len, opts.Ctx)
		}
		return receiveFromHose(dst, chans[i], out.Len, opts.Ctx)
	}
	ready := make(chan struct{})
	drains := make([]multicastDrain, len(dsts))
	var wg sync.WaitGroup
	if !opts.PhaseLocked {
		for i, dst := range dsts {
			wg.Add(1)
			go func(i int, dst *Function) {
				defer wg.Done()
				<-ready
				if !announced {
					drains[i].err = errEgressAborted
					return
				}
				if opts.Gates != nil && opts.Gates.BeforeIngress != nil {
					opts.Gates.BeforeIngress()
				}
				// Stage-boundary cancellation point: this target's share of
				// the payload is on the wire, no VM lock held.
				if err := CtxErr(opts.Ctx); err != nil {
					drains[i].err = err
					return
				}
				ds := dst.shim
				ds.mu.Lock()
				drains[i].ref, drains[i].bd, drains[i].err = drainTarget(i, dst)
				ds.mu.Unlock()
			}(i, dst)
		}
	}

	// Source stage under the source VM lock alone: locate + zero-copy view
	// (Wasm IO), then the single tee pass over the shared hose. In the
	// phase-locked regime lockShims above already holds every VM lock.
	if !opts.PhaseLocked {
		srcShim.mu.Lock()
	}
	outFD := func(i int) int {
		if local[i] {
			return chans[i].fdA
		}
		return chans[i].cfd
	}
	eerr := func() error {
		swIO := metrics.NewStopwatch(srcShim.now)
		o, err := src.sourceOutput(opts.SourceRef)
		if err != nil {
			return err
		}
		view, err := src.view.ReadView(o.Ptr, o.Len)
		if err != nil {
			return err
		}
		out = o
		srcWasmIO = swIO.Lap()
		srcShim.acct.CPU(metrics.User, srcWasmIO)
		announced = true
		close(ready) // drains start while the chunks below are still flowing

		// Single hose, chunk-by-chunk: tee to all but the last target,
		// splice to the last.
		swT := metrics.NewStopwatch(srcShim.now)
		dataStarted = true
		for off := 0; off < len(view); {
			if err := CtxErr(opts.Ctx); err != nil {
				return err
			}
			chunk := len(view) - off
			if chunk > srcShim.hoseCap {
				chunk = srcShim.hoseCap
			}
			if _, err := srcShim.proc.Vmsplice(hoseW, view[off:off+chunk]); err != nil {
				return fmt.Errorf("multicast vmsplice: %w", err)
			}
			for i := 0; i < len(dsts)-1; i++ {
				// tee(2) does not consume the pipe, so one call covers the
				// whole (fully queued) chunk; a short clone would duplicate
				// its prefix again and must be treated as a fault.
				n, err := srcShim.proc.Tee(hoseR, outFD(i), chunk)
				if err != nil {
					return fmt.Errorf("multicast tee to %s: %w", dsts[i].name, err)
				}
				if n != chunk {
					return fmt.Errorf("multicast tee to %s: short clone %d of %d", dsts[i].name, n, chunk)
				}
			}
			last := len(dsts) - 1
			for moved := 0; moved < chunk; {
				n, err := srcShim.proc.Splice(hoseR, outFD(last), chunk-moved)
				if err != nil {
					return fmt.Errorf("multicast splice to %s: %w", dsts[last].name, err)
				}
				moved += n
			}
			off += chunk
		}
		sendT = swT.Lap()
		srcShim.acct.CPU(metrics.Kernel, sendT)
		return nil
	}()
	if !opts.PhaseLocked {
		srcShim.mu.Unlock()
	}
	if !announced {
		close(ready)
	}
	// releaseLanded hands back deliveries that completed before the fan-out
	// failed, so an aborted (e.g. cancelled) multicast doesn't strand
	// regions in the fast targets' heaps. Descending-pointer order releases
	// duplicate targets of one VM LIFO; VM locks are taken per target
	// unless the phase-locked regime already holds them all.
	releaseLanded := func() {
		idx := make([]int, 0, len(drains))
		for i := range drains {
			if drains[i].err == nil && drains[i].ref.Len > 0 {
				idx = append(idx, i)
			}
		}
		sort.Slice(idx, func(a, b int) bool { return drains[idx[a]].ref.Ptr > drains[idx[b]].ref.Ptr })
		for _, i := range idx {
			ds := dsts[i].shim
			if !opts.PhaseLocked {
				ds.mu.Lock()
			}
			_ = dsts[i].view.Deallocate(drains[i].ref.Ptr)
			if !opts.PhaseLocked {
				ds.mu.Unlock()
			}
		}
	}
	if eerr != nil {
		if dataStarted {
			// Some drains may be blocked on sockets that will never fill;
			// poisoning the channels unblocks them (the deferred cleanup
			// destroys them again — destroy is idempotent).
			for _, c := range chans {
				if c != nil {
					c.destroy()
				}
			}
		}
		wg.Wait()
		releaseLanded()
		return nil, nil, eerr
	}

	if opts.PhaseLocked {
		for i, dst := range dsts {
			if err := CtxErr(opts.Ctx); err != nil {
				drains[i].err = err
				break
			}
			drains[i].ref, drains[i].bd, drains[i].err = drainTarget(i, dst)
			if drains[i].err != nil {
				break
			}
		}
	} else {
		wg.Wait()
	}
	for i, d := range drains {
		if d.err != nil {
			releaseLanded()
			return nil, nil, fmt.Errorf("multicast receive at %s: %w", dsts[i].name, d.err)
		}
	}

	srcUsage := srcShim.acct.Snapshot().Sub(beforeSrc)
	// The source-side cost is shared across targets.
	perTargetSend := sendT / time.Duration(len(dsts))
	linkShare := make(map[*netsim.Link]int, len(dsts))
	if opts.Links != nil {
		for _, l := range opts.Links {
			linkShare[l]++
		}
	}

	refs := make([]InboundRef, len(dsts))
	reports := make([]metrics.TransferReport, len(dsts))
	for i, dst := range dsts {
		refs[i] = drains[i].ref
		usage := dst.shim.acct.Snapshot().Sub(beforeDst[i])
		if i == 0 {
			usage = usage.Add(srcUsage) // attribute source work once
		}
		drainActivity := drains[i].bd.Transfer + drains[i].bd.WasmIO
		bd := drains[i].bd
		bd.Setup = setups[i]
		bd.Transfer += perTargetSend + srcShim.Kernel().SyscallTime(usage.Syscalls)
		bd.WasmIO += srcWasmIO / time.Duration(len(dsts))
		if opts.Links != nil && opts.Links[i] != nil {
			flows := 0
			if opts.Flows != nil {
				flows = opts.Flows[i]
			}
			if flows <= 0 {
				flows = linkShare[opts.Links[i]]
			}
			bd.Network = opts.Links[i].TransferTime(int64(out.Len), flows)
		}
		if !opts.PhaseLocked {
			// Per-target chunk pipeline: the source's shared tee pass feeds
			// this target's wire and drain chunk by chunk.
			srcShare := perTargetSend + srcWasmIO/time.Duration(len(dsts))
			bd.Overlap = modeledOverlap(hoseChunks(out, srcShim.hoseCap), srcShare, bd.Network, drainActivity)
		}
		mode := "network-multicast"
		if local[i] {
			mode = "kernel-multicast"
		}
		reports[i] = metrics.TransferReport{
			Bytes:     int64(out.Len),
			Breakdown: bd,
			Usage:     usage,
			Mode:      mode,
		}
	}
	healthy = true
	return refs, reports, nil
}

// receiveFromPair runs the same-node half of a fan-out's ingress: the teed
// page references queued on the target's socketpair end are popped straight
// off the socket (the socketpair IS the channel — no target hose) and copied
// into linear memory, the single user-space copy the kernel path allows.
// Callers hold the target's VM lock. Descriptors stay open — teardown
// belongs to the channel's lifecycle, not the transfer. ctx (nil = never
// cancelled) is polled at every chunk boundary.
func receiveFromPair(dst *Function, ch *channel, n uint32, ctx context.Context) (InboundRef, metrics.Breakdown, error) {
	dstShim := dst.shim
	var bd metrics.Breakdown

	swIO := metrics.NewStopwatch(dstShim.now)
	dstPtr, err := dst.view.Allocate(n)
	if err != nil {
		return InboundRef{}, bd, err
	}
	// dstPtr is the (VM lock held) top allocation: every failure past this
	// point — cancellation or a faulted syscall — hands it back so an
	// aborted ingress leaves the target's bump heap where it found it.
	abort := func(err error) (InboundRef, metrics.Breakdown, error) {
		_ = dst.view.Deallocate(dstPtr)
		return InboundRef{}, bd, err
	}
	wv, err := dst.view.WritableView(dstPtr, n)
	if err != nil {
		return abort(err)
	}
	allocT := swIO.Lap()
	dstShim.acct.CPU(metrics.User, allocT)
	bd.WasmIO += allocT

	received := 0
	swW := metrics.NewStopwatch(dstShim.now)
	for received < int(n) {
		if err := CtxErr(ctx); err != nil {
			return abort(err)
		}
		chunk := int(n) - received
		if chunk > dstShim.hoseCap {
			chunk = dstShim.hoseCap
		}
		pairRefs, err := dstShim.proc.ReadRefs(ch.fdB, chunk)
		if err != nil {
			return abort(fmt.Errorf("drain socketpair: %w", err))
		}
		off := received
		for _, ref := range pairRefs {
			off += copy(wv[off:], ref.Bytes())
		}
		pagebuf.ReleaseAll(pairRefs)
		if off == received {
			return abort(fmt.Errorf("drain socketpair: zero-byte read at offset %d of %d", received, n))
		}
		dstShim.acct.Copy(metrics.User, off-received)
		received = off
		wIO := swW.Lap()
		dstShim.acct.CPU(metrics.User, wIO)
		bd.WasmIO += wIO
		swW = metrics.NewStopwatch(dstShim.now)
	}
	return InboundRef{Ptr: dstPtr, Len: n}, bd, nil
}

// receiveFromHose runs the target half of Algorithm 1 over the target-side
// descriptors of ch: socket → target hose → linear memory. Callers hold the
// target's VM lock. Descriptors stay open — teardown belongs to the
// channel's lifecycle, not the transfer. ctx (nil = never cancelled) is
// polled at every chunk boundary.
func receiveFromHose(dst *Function, ch *channel, n uint32, ctx context.Context) (InboundRef, metrics.Breakdown, error) {
	dstShim := dst.shim
	var bd metrics.Breakdown

	swIO := metrics.NewStopwatch(dstShim.now)
	dstPtr, err := dst.view.Allocate(n)
	if err != nil {
		return InboundRef{}, bd, err
	}
	// dstPtr is the (VM lock held) top allocation: every failure past this
	// point — cancellation or a faulted syscall — hands it back so an
	// aborted ingress leaves the target's bump heap where it found it.
	abort := func(err error) (InboundRef, metrics.Breakdown, error) {
		_ = dst.view.Deallocate(dstPtr)
		return InboundRef{}, bd, err
	}
	wv, err := dst.view.WritableView(dstPtr, n)
	if err != nil {
		return abort(err)
	}
	allocT := swIO.Lap()
	dstShim.acct.CPU(metrics.User, allocT)
	bd.WasmIO += allocT

	received := 0
	swR := metrics.NewStopwatch(dstShim.now)
	for received < int(n) {
		if err := CtxErr(ctx); err != nil {
			return abort(err)
		}
		chunk := int(n) - received
		if chunk > dstShim.hoseCap {
			chunk = dstShim.hoseCap
		}
		for moved := 0; moved < chunk; {
			m, err := dstShim.proc.Splice(ch.sfd, ch.twfd, chunk-moved)
			if err != nil {
				return abort(fmt.Errorf("splice in: %w", err))
			}
			moved += m
		}
		kernelT := swR.Lap()
		dstShim.acct.CPU(metrics.Kernel, kernelT)
		bd.Transfer += kernelT

		swW := metrics.NewStopwatch(dstShim.now)
		hoseRefs, err := dstShim.proc.ReadRefs(ch.trfd, chunk)
		if err != nil {
			return abort(fmt.Errorf("drain hose: %w", err))
		}
		off := received
		for _, ref := range hoseRefs {
			off += copy(wv[off:], ref.Bytes())
		}
		pagebuf.ReleaseAll(hoseRefs)
		dstShim.acct.Copy(metrics.User, off-received)
		received = off
		wIO := swW.Lap()
		dstShim.acct.CPU(metrics.User, wIO)
		bd.WasmIO += wIO
		swR = metrics.NewStopwatch(dstShim.now)
	}
	return InboundRef{Ptr: dstPtr, Len: n}, bd, nil
}
