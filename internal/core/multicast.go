package core

import (
	"fmt"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/pagebuf"
)

// MulticastTransfer delivers the source's output to several remote targets
// from a single pass over the virtual data hose — an extension of
// Algorithm 1 for the paper's fan-out pattern (§6.4). Instead of re-running
// the source pipeline per target, each hose chunk is vmspliced once and then
// tee(2)-duplicated into every target's socket (the last target takes the
// pages by splice): page references are shared, so the source side still
// performs zero payload copies regardless of fan-out degree.
//
// All targets must live on nodes different from the source's; network time
// is modeled with all targets' flows sharing the source's links.
func MulticastTransfer(src *Function, dsts []*Function, opts NetworkOptions) ([]InboundRef, []metrics.TransferReport, error) {
	if len(dsts) == 0 {
		return nil, nil, fmt.Errorf("core: multicast requires targets")
	}
	srcShim := src.shim
	for _, dst := range dsts {
		if dst.shim == srcShim {
			return nil, nil, ErrSameVM
		}
		if dst.shim.Kernel() == srcShim.Kernel() {
			return nil, nil, ErrSameNode
		}
	}
	all := make([]*Shim, 0, len(dsts)+1)
	all = append(all, srcShim)
	for _, dst := range dsts {
		all = append(all, dst.shim)
	}
	locked := lockShims(all...)
	defer unlockShims(locked)
	beforeSrc := srcShim.acct.Snapshot()
	beforeDst := make([]metrics.Usage, len(dsts))
	for i, dst := range dsts {
		beforeDst[i] = dst.shim.acct.Snapshot()
	}

	// Source: locate + zero-copy view (Wasm IO).
	swIO := metrics.NewStopwatch(srcShim.now)
	out, err := src.locateQuiet()
	if err != nil {
		return nil, nil, err
	}
	view, err := src.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return nil, nil, err
	}
	srcWasmIO := swIO.Lap()
	srcShim.acct.CPU(metrics.User, srcWasmIO)

	// One channel per target (connection + target hose), cached per shim
	// pair like the unicast network path. Two targets inside one shim would
	// collide on the pair's cached connection, so duplicates of an already
	// acquired shim fall back to per-call channels. The first channel's
	// source hose doubles as the shared multicast hose.
	swSetup := metrics.NewStopwatch(srcShim.now)
	chans := make([]*channel, len(dsts))
	setups := make([]time.Duration, len(dsts))
	seen := make(map[*Shim]bool, len(dsts))
	healthy := false
	dataStarted := false
	defer func() {
		for _, c := range chans {
			if c == nil {
				continue
			}
			c.pin(false)
			// Ephemeral (per-call or duplicate-shim) channels always tear
			// down. Cached ones are destroyed only when the transfer failed
			// after payload started moving — then any channel may hold
			// stranded pages; failures before the first vmsplice leave all
			// channels pristine and warm.
			if !c.cached || (!healthy && dataStarted) {
				c.destroy()
			}
		}
	}()
	for i, dst := range dsts {
		var hit bool
		if opts.NoChannelCache || seen[dst.shim] {
			// Ephemeral channels skip the source hose except for the first
			// one, which supplies the fan-out's shared tee hose — per-call
			// multicast then issues exactly the pre-cache trace: one source
			// hose plus connection + target hose per target.
			kind := chanNetworkTarget
			if i == 0 {
				kind = chanNetwork
			}
			chans[i], err = establishChannel(srcShim, dst.shim, kind)
		} else {
			chans[i], hit, err = srcShim.acquireChannel(dst.shim, chanNetwork)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("multicast channel to %s: %w", dst.name, err)
		}
		// Pin until the transfer completes: a fan-out wider than the source
		// shim's ChannelCap must not LRU-evict its own in-flight channels
		// while acquiring the later ones.
		chans[i].pin(true)
		seen[dst.shim] = true
		if !hit {
			setups[i] = swSetup.Lap()
		} else {
			swSetup.Lap()
		}
	}
	var setupTotal time.Duration
	for _, d := range setups {
		setupTotal += d
	}
	srcShim.acct.CPU(metrics.Kernel, setupTotal)

	// Single hose, chunk-by-chunk: tee to all but the last target, splice
	// to the last.
	swT := metrics.NewStopwatch(srcShim.now)
	hose := chans[0]
	dataStarted = true
	for off := 0; off < len(view); {
		chunk := len(view) - off
		if chunk > srcShim.hoseCap {
			chunk = srcShim.hoseCap
		}
		if _, err := srcShim.proc.Vmsplice(hose.wfd, view[off:off+chunk]); err != nil {
			return nil, nil, fmt.Errorf("multicast vmsplice: %w", err)
		}
		for i := 0; i < len(dsts)-1; i++ {
			// tee(2) does not consume the pipe, so one call covers the
			// whole (fully queued) chunk; a short clone would duplicate
			// its prefix again and must be treated as a fault.
			n, err := srcShim.proc.Tee(hose.rfd, chans[i].cfd, chunk)
			if err != nil {
				return nil, nil, fmt.Errorf("multicast tee to %s: %w", dsts[i].name, err)
			}
			if n != chunk {
				return nil, nil, fmt.Errorf("multicast tee to %s: short clone %d of %d", dsts[i].name, n, chunk)
			}
		}
		last := len(dsts) - 1
		for moved := 0; moved < chunk; {
			n, err := srcShim.proc.Splice(hose.rfd, chans[last].cfd, chunk-moved)
			if err != nil {
				return nil, nil, fmt.Errorf("multicast splice to %s: %w", dsts[last].name, err)
			}
			moved += n
		}
		off += chunk
	}
	sendT := swT.Lap()
	srcShim.acct.CPU(metrics.Kernel, sendT)
	srcUsage := srcShim.acct.Snapshot().Sub(beforeSrc)
	// The source-side cost is shared across targets.
	perTargetSend := sendT / time.Duration(len(dsts))

	refs := make([]InboundRef, len(dsts))
	reports := make([]metrics.TransferReport, len(dsts))
	for i, dst := range dsts {
		ref, bd, err := receiveFromHose(dst, chans[i], out.Len)
		if err != nil {
			return nil, nil, fmt.Errorf("multicast receive at %s: %w", dst.name, err)
		}
		refs[i] = ref
		usage := dst.shim.acct.Snapshot().Sub(beforeDst[i])
		if i == 0 {
			usage = usage.Add(srcUsage) // attribute source work once
		}
		bd.Setup = setups[i]
		bd.Transfer += perTargetSend + srcShim.Kernel().SyscallTime(usage.Syscalls)
		bd.WasmIO += srcWasmIO / time.Duration(len(dsts))
		if opts.Link != nil {
			flows := opts.Flows
			if flows < len(dsts) {
				flows = len(dsts)
			}
			bd.Network = opts.Link.TransferTime(int64(out.Len), flows)
		}
		reports[i] = metrics.TransferReport{
			Bytes:     int64(out.Len),
			Breakdown: bd,
			Usage:     usage,
			Mode:      "network-multicast",
		}
	}
	healthy = true
	return refs, reports, nil
}

// receiveFromHose runs the target half of Algorithm 1 over the target-side
// descriptors of ch: socket → target hose → linear memory. Descriptors stay
// open — teardown belongs to the channel's lifecycle, not the transfer.
func receiveFromHose(dst *Function, ch *channel, n uint32) (InboundRef, metrics.Breakdown, error) {
	dstShim := dst.shim
	var bd metrics.Breakdown

	swIO := metrics.NewStopwatch(dstShim.now)
	dstPtr, err := dst.view.Allocate(n)
	if err != nil {
		return InboundRef{}, bd, err
	}
	wv, err := dst.view.WritableView(dstPtr, n)
	if err != nil {
		return InboundRef{}, bd, err
	}
	allocT := swIO.Lap()
	dstShim.acct.CPU(metrics.User, allocT)
	bd.WasmIO += allocT

	received := 0
	swR := metrics.NewStopwatch(dstShim.now)
	for received < int(n) {
		chunk := int(n) - received
		if chunk > dstShim.hoseCap {
			chunk = dstShim.hoseCap
		}
		for moved := 0; moved < chunk; {
			m, err := dstShim.proc.Splice(ch.sfd, ch.twfd, chunk-moved)
			if err != nil {
				return InboundRef{}, bd, fmt.Errorf("splice in: %w", err)
			}
			moved += m
		}
		kernelT := swR.Lap()
		dstShim.acct.CPU(metrics.Kernel, kernelT)
		bd.Transfer += kernelT

		swW := metrics.NewStopwatch(dstShim.now)
		hoseRefs, err := dstShim.proc.ReadRefs(ch.trfd, chunk)
		if err != nil {
			return InboundRef{}, bd, fmt.Errorf("drain hose: %w", err)
		}
		off := received
		for _, ref := range hoseRefs {
			off += copy(wv[off:], ref.Bytes())
		}
		pagebuf.ReleaseAll(hoseRefs)
		dstShim.acct.Copy(metrics.User, off-received)
		received = off
		wIO := swW.Lap()
		dstShim.acct.CPU(metrics.User, wIO)
		bd.WasmIO += wIO
		swR = metrics.NewStopwatch(dstShim.now)
	}
	return InboundRef{Ptr: dstPtr, Len: n}, bd, nil
}
