package core

import (
	"fmt"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/pagebuf"
)

// MulticastTransfer delivers the source's output to several remote targets
// from a single pass over the virtual data hose — an extension of
// Algorithm 1 for the paper's fan-out pattern (§6.4). Instead of re-running
// the source pipeline per target, each hose chunk is vmspliced once and then
// tee(2)-duplicated into every target's socket (the last target takes the
// pages by splice): page references are shared, so the source side still
// performs zero payload copies regardless of fan-out degree.
//
// All targets must live on nodes different from the source's; network time
// is modeled with all targets' flows sharing the source's links.
func MulticastTransfer(src *Function, dsts []*Function, opts NetworkOptions) ([]InboundRef, []metrics.TransferReport, error) {
	if len(dsts) == 0 {
		return nil, nil, fmt.Errorf("core: multicast requires targets")
	}
	srcShim := src.shim
	for _, dst := range dsts {
		if dst.shim == srcShim {
			return nil, nil, ErrSameVM
		}
		if dst.shim.Kernel() == srcShim.Kernel() {
			return nil, nil, ErrSameNode
		}
	}
	all := make([]*Shim, 0, len(dsts)+1)
	all = append(all, srcShim)
	for _, dst := range dsts {
		all = append(all, dst.shim)
	}
	locked := lockShims(all...)
	defer unlockShims(locked)
	beforeSrc := srcShim.acct.Snapshot()
	beforeDst := make([]metrics.Usage, len(dsts))
	for i, dst := range dsts {
		beforeDst[i] = dst.shim.acct.Snapshot()
	}

	// Source: locate + zero-copy view (Wasm IO).
	swIO := metrics.NewStopwatch(srcShim.now)
	out, err := src.locateQuiet()
	if err != nil {
		return nil, nil, err
	}
	view, err := src.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return nil, nil, err
	}
	srcWasmIO := swIO.Lap()
	srcShim.acct.CPU(metrics.User, srcWasmIO)

	// One connection per target. Descriptors are also closed explicitly on
	// the success path (matching Algorithm 1's close_all); the deferred
	// closes only matter on error returns, where a second Close of an
	// already-closed simulated fd is a harmless EBADF (fds never recycle).
	swT := metrics.NewStopwatch(srcShim.now)
	cfds := make([]int, len(dsts))
	sfds := make([]int, len(dsts))
	for i, dst := range dsts {
		cfds[i], sfds[i] = kernelConnect(srcShim, dst.shim)
		defer srcShim.proc.Close(cfds[i])
		defer dst.shim.proc.Close(sfds[i])
	}

	// Single hose, chunk-by-chunk: tee to all but the last target, splice
	// to the last.
	rfd, wfd := srcShim.proc.PipeSized(srcShim.hoseCap)
	defer srcShim.proc.Close(rfd)
	defer srcShim.proc.Close(wfd)
	for off := 0; off < len(view); {
		chunk := len(view) - off
		if chunk > srcShim.hoseCap {
			chunk = srcShim.hoseCap
		}
		if _, err := srcShim.proc.Vmsplice(wfd, view[off:off+chunk]); err != nil {
			return nil, nil, fmt.Errorf("multicast vmsplice: %w", err)
		}
		for i := 0; i < len(dsts)-1; i++ {
			// tee(2) does not consume the pipe, so one call covers the
			// whole (fully queued) chunk; a short clone would duplicate
			// its prefix again and must be treated as a fault.
			n, err := srcShim.proc.Tee(rfd, cfds[i], chunk)
			if err != nil {
				return nil, nil, fmt.Errorf("multicast tee to %s: %w", dsts[i].name, err)
			}
			if n != chunk {
				return nil, nil, fmt.Errorf("multicast tee to %s: short clone %d of %d", dsts[i].name, n, chunk)
			}
		}
		last := len(dsts) - 1
		for moved := 0; moved < chunk; {
			n, err := srcShim.proc.Splice(rfd, cfds[last], chunk-moved)
			if err != nil {
				return nil, nil, fmt.Errorf("multicast splice to %s: %w", dsts[last].name, err)
			}
			moved += n
		}
		off += chunk
	}
	_ = srcShim.proc.Close(rfd)
	_ = srcShim.proc.Close(wfd)
	for _, fd := range cfds {
		_ = srcShim.proc.Close(fd)
	}
	sendT := swT.Lap()
	srcShim.acct.CPU(metrics.Kernel, sendT)
	srcUsage := srcShim.acct.Snapshot().Sub(beforeSrc)
	// The source-side cost is shared across targets.
	perTargetSend := sendT / time.Duration(len(dsts))

	refs := make([]InboundRef, len(dsts))
	reports := make([]metrics.TransferReport, len(dsts))
	for i, dst := range dsts {
		ref, bd, err := receiveFromHose(dst, sfds[i], out.Len)
		if err != nil {
			return nil, nil, fmt.Errorf("multicast receive at %s: %w", dst.name, err)
		}
		refs[i] = ref
		usage := dst.shim.acct.Snapshot().Sub(beforeDst[i])
		if i == 0 {
			usage = usage.Add(srcUsage) // attribute source work once
		}
		bd.Transfer += perTargetSend + srcShim.Kernel().SyscallTime(usage.Syscalls)
		bd.WasmIO += srcWasmIO / time.Duration(len(dsts))
		if opts.Link != nil {
			flows := opts.Flows
			if flows < len(dsts) {
				flows = len(dsts)
			}
			bd.Network = opts.Link.TransferTime(int64(out.Len), flows)
		}
		reports[i] = metrics.TransferReport{
			Bytes:     int64(out.Len),
			Breakdown: bd,
			Usage:     usage,
			Mode:      "network-multicast",
		}
	}
	return refs, reports, nil
}

// receiveFromHose runs the target half of Algorithm 1: socket → target hose
// → linear memory.
func receiveFromHose(dst *Function, sfd int, n uint32) (InboundRef, metrics.Breakdown, error) {
	dstShim := dst.shim
	var bd metrics.Breakdown

	swIO := metrics.NewStopwatch(dstShim.now)
	dstPtr, err := dst.view.Allocate(n)
	if err != nil {
		return InboundRef{}, bd, err
	}
	wv, err := dst.view.WritableView(dstPtr, n)
	if err != nil {
		return InboundRef{}, bd, err
	}
	allocT := swIO.Lap()
	dstShim.acct.CPU(metrics.User, allocT)
	bd.WasmIO += allocT

	// Closed explicitly below on success; the defers cover error returns
	// (double-close of a simulated fd is a harmless, uncharged EBADF).
	trfd, twfd := dstShim.proc.PipeSized(dstShim.hoseCap)
	defer dstShim.proc.Close(trfd)
	defer dstShim.proc.Close(twfd)
	received := 0
	swR := metrics.NewStopwatch(dstShim.now)
	for received < int(n) {
		chunk := int(n) - received
		if chunk > dstShim.hoseCap {
			chunk = dstShim.hoseCap
		}
		for moved := 0; moved < chunk; {
			m, err := dstShim.proc.Splice(sfd, twfd, chunk-moved)
			if err != nil {
				return InboundRef{}, bd, fmt.Errorf("splice in: %w", err)
			}
			moved += m
		}
		kernelT := swR.Lap()
		dstShim.acct.CPU(metrics.Kernel, kernelT)
		bd.Transfer += kernelT

		swW := metrics.NewStopwatch(dstShim.now)
		hoseRefs, err := dstShim.proc.ReadRefs(trfd, chunk)
		if err != nil {
			return InboundRef{}, bd, fmt.Errorf("drain hose: %w", err)
		}
		off := received
		for _, ref := range hoseRefs {
			off += copy(wv[off:], ref.Bytes())
		}
		pagebuf.ReleaseAll(hoseRefs)
		dstShim.acct.Copy(metrics.User, off-received)
		received = off
		wIO := swW.Lap()
		dstShim.acct.CPU(metrics.User, wIO)
		bd.WasmIO += wIO
		swR = metrics.NewStopwatch(dstShim.now)
	}
	_ = dstShim.proc.Close(trfd)
	_ = dstShim.proc.Close(twfd)
	_ = dstShim.proc.Close(sfd)
	return InboundRef{Ptr: dstPtr, Len: n}, bd, nil
}

// kernelConnect opens a TCP-like connection between two shims' sandboxes.
func kernelConnect(src, dst *Shim) (int, int) {
	return kernel.Connect(src.proc, dst.proc)
}
