package core_test

import (
	"errors"
	"fmt"
	"testing"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/core"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
)

// multicastLinks builds the per-target link list for targets sharing one
// modeled link.
func multicastLinks(link *netsim.Link, n int) core.MulticastOptions {
	links := make([]*netsim.Link, n)
	for i := range links {
		links[i] = link
	}
	return core.MulticastOptions{Links: links}
}

func TestMulticastDeliversToAllTargets(t *testing.T) {
	kSrc := kernel.New("edge")
	sSrc := newShim(t, "src", kSrc)
	src := addFn(t, sSrc, "src")

	const degree, n = 3, 1_500_000
	dsts := make([]*core.Function, degree)
	for i := range dsts {
		kd := kernel.New(fmt.Sprintf("cloud-%d", i))
		sd := newShim(t, fmt.Sprintf("s%d", i), kd)
		dsts[i] = addFn(t, sd, fmt.Sprintf("t%d", i))
	}
	if _, err := src.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}

	link := netsim.NewLink(100*netsim.Mbps, 0)
	refs, reports, err := core.MulticastTransfer(src, dsts, multicastLinks(link, len(dsts)))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != degree || len(reports) != degree {
		t.Fatalf("got %d refs, %d reports", len(refs), len(reports))
	}
	for i, dst := range dsts {
		verifyDelivery(t, dst, refs[i], n)
		if reports[i].Mode != "network-multicast" {
			t.Fatalf("mode = %s", reports[i].Mode)
		}
		// Zero kernel-boundary copies on every path.
		if reports[i].Usage.KernelCopyBytes != 0 {
			t.Fatalf("target %d: %d kernel copy bytes", i, reports[i].Usage.KernelCopyBytes)
		}
		// Each flow models link sharing across the fan-out.
		if reports[i].Breakdown.Network <= 0 {
			t.Fatalf("target %d: no network time", i)
		}
	}
}

// TestMulticastSourceCostIndependentOfDegree pins the tee(2) property: the
// source reads its guest memory once and performs zero payload copies no
// matter how many targets receive the data.
func TestMulticastSourceCostIndependentOfDegree(t *testing.T) {
	sourceUsage := func(degree int) (syscalls int64, copies int64) {
		kSrc := kernel.New("edge")
		sSrc := newShim(t, "src", kSrc)
		src := addFn(t, sSrc, "src")
		dsts := make([]*core.Function, degree)
		for i := range dsts {
			kd := kernel.New(fmt.Sprintf("cloud-%d", i))
			sd := newShim(t, fmt.Sprintf("s%d", i), kd)
			dsts[i] = addFn(t, sd, fmt.Sprintf("t%d", i))
		}
		const n = 1 << 20
		if _, err := src.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			t.Fatal(err)
		}
		before := sSrc.Account().Snapshot()
		if _, _, err := core.MulticastTransfer(src, dsts, core.MulticastOptions{}); err != nil {
			t.Fatal(err)
		}
		delta := sSrc.Account().Snapshot().Sub(before)
		return delta.Syscalls, delta.TotalCopyBytes()
	}
	sys1, cp1 := sourceUsage(1)
	sys8, cp8 := sourceUsage(8)
	if cp1 != 0 || cp8 != 0 {
		t.Fatalf("source copied bytes: %d / %d", cp1, cp8)
	}
	// Extra targets cost one tee + one connect + one close each — far less
	// than re-running the whole source pipeline per target.
	perTarget := float64(sys8-sys1) / 7
	if perTarget > 4 {
		t.Fatalf("per-target source syscalls = %.1f, want <= 4", perTarget)
	}
}

func TestMulticastValidations(t *testing.T) {
	k1 := kernel.New("n1")
	s1 := newShim(t, "s1", k1)
	src := addFn(t, s1, "src")
	if _, _, err := core.MulticastTransfer(src, nil, core.MulticastOptions{}); err == nil {
		t.Fatal("empty target list accepted")
	}
	sameVM := addFn(t, s1, "same-vm")
	if _, _, err := core.MulticastTransfer(src, []*core.Function{sameVM}, core.MulticastOptions{}); !errors.Is(err, core.ErrSameVM) {
		t.Fatalf("same-VM target = %v", err)
	}
	links := []*netsim.Link{netsim.NewLink(100*netsim.Mbps, 0)}
	if _, _, err := core.MulticastTransfer(src, []*core.Function{sameVM, sameVM}, core.MulticastOptions{Links: links}); err == nil {
		t.Fatal("mismatched link count accepted")
	}
}

// TestMulticastSameNodeKernelPath pins the shared-egress kernel path: targets
// co-located with the source receive teed page references through their
// socketpair channels — one vmsplice pass feeds every target, the source
// copies nothing, and each target pays exactly the single user-space copy
// into its linear memory. The page pool balances exactly afterwards.
func TestMulticastSameNodeKernelPath(t *testing.T) {
	k := kernel.New("edge")
	sSrc := newShim(t, "src", k)
	src := addFn(t, sSrc, "src")

	const degree, n = 4, 1_500_000
	dsts := make([]*core.Function, degree)
	for i := range dsts {
		sd := newShim(t, fmt.Sprintf("s%d", i), k)
		dsts[i] = addFn(t, sd, fmt.Sprintf("t%d", i))
	}
	if _, err := src.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	before := sSrc.Account().Snapshot()
	refs, reports, err := core.MulticastTransfer(src, dsts, core.MulticastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srcDelta := sSrc.Account().Snapshot().Sub(before)
	if srcDelta.TotalCopyBytes() != 0 {
		t.Fatalf("source copied %d bytes, want 0", srcDelta.TotalCopyBytes())
	}
	for i, dst := range dsts {
		verifyDelivery(t, dst, refs[i], n)
		if reports[i].Mode != "kernel-multicast" {
			t.Fatalf("target %d mode = %s", i, reports[i].Mode)
		}
		if reports[i].Usage.KernelCopyBytes != 0 {
			t.Fatalf("target %d: %d kernel copy bytes", i, reports[i].Usage.KernelCopyBytes)
		}
		if reports[i].Breakdown.Network != 0 {
			t.Fatalf("target %d charged wire time on a same-node leg", i)
		}
	}
	if res := k.Pool().Resident(); res != 0 {
		t.Fatalf("leaked %d resident kernel bytes", res)
	}
}

// TestMulticastMixedSetSplits covers the mixed fan-out: one tee group feeds
// a same-node socketpair and a cross-node connection from the same source
// pass, each leg reporting its own mode and only the remote leg charged
// wire time.
func TestMulticastMixedSetSplits(t *testing.T) {
	kEdge, kCloud := kernel.New("edge"), kernel.New("cloud")
	sSrc := newShim(t, "src", kEdge)
	src := addFn(t, sSrc, "src")
	sLocal := newShim(t, "sl", kEdge)
	sRemote := newShim(t, "sr", kCloud)
	dsts := []*core.Function{addFn(t, sLocal, "near"), addFn(t, sRemote, "far")}

	const n = 900_000
	if _, err := src.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	links := []*netsim.Link{nil, netsim.NewLink(100*netsim.Mbps, 0)}
	refs, reports, err := core.MulticastTransfer(src, dsts, core.MulticastOptions{Links: links})
	if err != nil {
		t.Fatal(err)
	}
	for i, dst := range dsts {
		verifyDelivery(t, dst, refs[i], n)
	}
	if reports[0].Mode != "kernel-multicast" || reports[1].Mode != "network-multicast" {
		t.Fatalf("modes = %s / %s", reports[0].Mode, reports[1].Mode)
	}
	if reports[0].Breakdown.Network != 0 {
		t.Fatal("same-node leg charged wire time")
	}
	if reports[1].Breakdown.Network <= 0 {
		t.Fatal("remote leg missing wire time")
	}
	if res := kEdge.Pool().Resident() + kCloud.Pool().Resident(); res != 0 {
		t.Fatalf("leaked %d resident kernel bytes", res)
	}
}

// TestMulticastSameNodePhaseLocked exercises the all-local fan-out in the
// pre-pipeline regime, which drains targets strictly after the source pass —
// the per-call hose pipe must absorb the whole payload and still tear down
// clean.
func TestMulticastSameNodePhaseLocked(t *testing.T) {
	k := kernel.New("edge")
	sSrc := newShim(t, "src", k)
	src := addFn(t, sSrc, "src")
	dsts := []*core.Function{
		addFn(t, newShim(t, "s0", k), "t0"),
		addFn(t, newShim(t, "s1", k), "t1"),
	}
	const n = 700_000
	if _, err := src.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	refs, _, err := core.MulticastTransfer(src, dsts, core.MulticastOptions{PhaseLocked: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, dst := range dsts {
		verifyDelivery(t, dst, refs[i], n)
	}
	if res := k.Pool().Resident(); res != 0 {
		t.Fatalf("leaked %d resident kernel bytes", res)
	}
}

// TestMulticastSourceSyscallsFlatSameNode is the same-node analogue of the
// degree-independence test: extra co-located targets cost the source one
// tee per chunk and nothing else — no extra reads of guest memory, no
// copies, no per-target connections.
func TestMulticastSourceSyscallsFlatSameNode(t *testing.T) {
	sourceUsage := func(degree int) (syscalls int64, copies int64) {
		k := kernel.New("edge")
		sSrc := newShim(t, "src", k)
		src := addFn(t, sSrc, "src")
		dsts := make([]*core.Function, degree)
		for i := range dsts {
			sd := newShim(t, fmt.Sprintf("s%d", i), k)
			dsts[i] = addFn(t, sd, fmt.Sprintf("t%d", i))
		}
		const n = 1 << 20
		if _, err := src.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			t.Fatal(err)
		}
		before := sSrc.Account().Snapshot()
		if _, _, err := core.MulticastTransfer(src, dsts, core.MulticastOptions{}); err != nil {
			t.Fatal(err)
		}
		delta := sSrc.Account().Snapshot().Sub(before)
		return delta.Syscalls, delta.TotalCopyBytes()
	}
	sys1, cp1 := sourceUsage(1)
	sys8, cp8 := sourceUsage(8)
	if cp1 != 0 || cp8 != 0 {
		t.Fatalf("source copied bytes: %d / %d", cp1, cp8)
	}
	// Extra same-node targets cost one socketpair + one tee per chunk each.
	perTarget := float64(sys8-sys1) / 7
	if perTarget > 4 {
		t.Fatalf("per-target source syscalls = %.1f, want <= 4", perTarget)
	}
}

func TestMulticastSingleTargetEqualsUnicast(t *testing.T) {
	k1, k2 := kernel.New("edge"), kernel.New("cloud")
	s1, s2 := newShim(t, "s1", k1), newShim(t, "s2", k2)
	src, dst := addFn(t, s1, "a"), addFn(t, s2, "b")
	const n = 300_000
	if _, err := src.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	refs, reports, err := core.MulticastTransfer(src, []*core.Function{dst}, core.MulticastOptions{})
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, dst, refs[0], n)
	if reports[0].Usage.UserCopyBytes != n {
		t.Fatalf("user copies = %d", reports[0].Usage.UserCopyBytes)
	}
}

func TestKernelTeeSemantics(t *testing.T) {
	k := kernel.New("n")
	p := k.NewProc("p", nil)
	defer p.CloseAll()
	rfd, wfd := p.PipeSized(1 << 20)
	r2, w2 := p.PipeSized(1 << 20)
	payload := []byte("tee leaves the source readable")
	if _, err := p.Vmsplice(wfd, payload); err != nil {
		t.Fatal(err)
	}
	n, err := p.Tee(rfd, w2, len(payload))
	if err != nil || n != len(payload) {
		t.Fatalf("tee = %d, %v", n, err)
	}
	// Both pipes now hold the payload.
	buf := make([]byte, len(payload))
	if _, err := p.Read(r2, buf); err != nil || string(buf) != string(payload) {
		t.Fatalf("clone read = %q, %v", buf, err)
	}
	if _, err := p.Read(rfd, buf); err != nil || string(buf) != string(payload) {
		t.Fatalf("original read after tee = %q, %v", buf, err)
	}
	// tee from a non-pipe fails.
	k2 := kernel.New("n2")
	q := k2.NewProc("q", nil)
	defer q.CloseAll()
	cfd, _ := kernel.Connect(p, q)
	if _, err := p.Tee(cfd, w2, 1); !errors.Is(err, kernel.ErrNotSupported) {
		t.Fatalf("tee from socket = %v", err)
	}
	if _, err := p.Tee(rfd, w2, 0); !errors.Is(err, kernel.ErrInvalid) {
		t.Fatalf("tee n=0 = %v", err)
	}
}
