package core_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/core"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
)

// TestWarmTransfersIssueZeroSetupSyscalls is the channel cache's central
// claim, proven with the simulated kernel's exact syscall accounting: a
// warm (cache-hit) transfer issues zero connect/pipe/socketpair syscalls —
// only the per-payload data plane — while checksums and copy accounting
// stay exactly what the paper's Algorithm 1 prescribes.
func TestWarmTransfersIssueZeroSetupSyscalls(t *testing.T) {
	t.Run("kernel", func(t *testing.T) {
		k := kernel.New("node")
		s1, s2 := newShim(t, "s1", k), newShim(t, "s2", k)
		fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
		const n = 64 << 10
		if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			t.Fatal(err)
		}

		run := func() (srcSys, dstSys int64, rep struct {
			setup time.Duration
			kcopy int64
		}) {
			sb, db := s1.Account().Snapshot(), s2.Account().Snapshot()
			ref, r, err := core.KernelSpaceTransfer(fa, fb, core.KernelOptions{})
			if err != nil {
				t.Fatal(err)
			}
			verifyDelivery(t, fb, ref, n)
			rep.setup = r.Breakdown.Setup
			rep.kcopy = r.Usage.KernelCopyBytes
			return s1.Account().Snapshot().Sub(sb).Syscalls, s2.Account().Snapshot().Sub(db).Syscalls, rep
		}

		// Cold: socketpair(1, charged to src) + write(1) on the source,
		// read(1) on the target.
		srcSys, dstSys, cold := run()
		if srcSys != 2 || dstSys != 1 {
			t.Fatalf("cold syscalls = %d/%d, want 2/1", srcSys, dstSys)
		}
		if cold.setup <= 0 {
			t.Fatal("cold transfer reported no Setup time")
		}
		// Warm: write(1) + read(1) — the payload's two kernel crossings and
		// nothing else. Zero socketpair syscalls, identical copy accounting.
		srcSys, dstSys, warm := run()
		if srcSys != 1 || dstSys != 1 {
			t.Fatalf("warm syscalls = %d/%d, want 1/1", srcSys, dstSys)
		}
		if warm.setup != 0 {
			t.Fatalf("warm transfer reported Setup = %v, want 0", warm.setup)
		}
		if cold.kcopy != 2*n || warm.kcopy != 2*n {
			t.Fatalf("kernel copies cold/warm = %d/%d, want %d", cold.kcopy, warm.kcopy, 2*n)
		}
	})

	t.Run("network", func(t *testing.T) {
		k1, k2 := kernel.New("edge"), kernel.New("cloud")
		s1, err := core.NewShim(core.ShimConfig{
			Name: "s1", Workflow: wf, Kernel: k1, Module: guest.Module(), DataHoseBytes: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s1.Close()
		s2, err := core.NewShim(core.ShimConfig{
			Name: "s2", Workflow: wf, Kernel: k2, Module: guest.Module(), DataHoseBytes: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
		const n = 2 << 20 // 2 hose-sized chunks
		if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			t.Fatal(err)
		}

		run := func() (srcSys, dstSys int64, setup time.Duration, userCopies int64) {
			sb, db := s1.Account().Snapshot(), s2.Account().Snapshot()
			ref, r, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{})
			if err != nil {
				t.Fatal(err)
			}
			verifyDelivery(t, fb, ref, n)
			return s1.Account().Snapshot().Sub(sb).Syscalls,
				s2.Account().Snapshot().Sub(db).Syscalls,
				r.Breakdown.Setup, r.Usage.UserCopyBytes
		}

		srcSys, dstSys, setup, copies := run()
		if srcSys != 6 || dstSys != 6 { // connect+pipe+(vmsplice+splice)*2 / connect+pipe+(splice+readrefs)*2
			t.Fatalf("cold syscalls = %d/%d, want 6/6", srcSys, dstSys)
		}
		if setup <= 0 {
			t.Fatal("cold transfer reported no Setup time")
		}
		if copies != n {
			t.Fatalf("cold user copies = %d, want %d", copies, n)
		}
		srcSys, dstSys, setup, copies = run()
		if srcSys != 4 || dstSys != 4 { // the per-chunk data plane only
			t.Fatalf("warm syscalls = %d/%d, want 4/4", srcSys, dstSys)
		}
		if setup != 0 {
			t.Fatalf("warm Setup = %v, want 0", setup)
		}
		if copies != n {
			t.Fatalf("warm user copies = %d, want %d", copies, n)
		}
	})
}

// TestConcurrentWarmTransfersRaceClean drives many overlapping warm
// transfers across disjoint shim pairs (the -race proof for the cache's
// locking discipline) and pins, per pair, the exact aggregate syscall count
// so no hidden control-plane work sneaks into the warm path.
func TestConcurrentWarmTransfersRaceClean(t *testing.T) {
	const pairs, iters, n = 8, 10, 256 << 10
	k1, k2 := kernel.New("edge"), kernel.New("cloud")
	srcs := make([]*core.Function, pairs)
	dsts := make([]*core.Function, pairs)
	srcShims := make([]*core.Shim, pairs)
	dstShims := make([]*core.Shim, pairs)
	for i := 0; i < pairs; i++ {
		srcShims[i] = newShim(t, fmt.Sprintf("src-%d", i), k1)
		dstShims[i] = newShim(t, fmt.Sprintf("dst-%d", i), k2)
		srcs[i] = addFn(t, srcShims[i], "a")
		dsts[i] = addFn(t, dstShims[i], "b")
		if _, err := srcs[i].CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			t.Fatal(err)
		}
		// Prime the pair's channel so every measured transfer is warm.
		if _, _, err := core.NetworkTransfer(srcs[i], dsts[i], core.NetworkOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	before := make([]int64, pairs)
	for i := range before {
		before[i] = srcShims[i].Account().Snapshot().Syscalls + dstShims[i].Account().Snapshot().Syscalls
	}
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				ref, rep, err := core.NetworkTransfer(srcs[i], dsts[i], core.NetworkOptions{})
				if err != nil {
					t.Errorf("pair %d: %v", i, err)
					return
				}
				if rep.Breakdown.Setup != 0 {
					t.Errorf("pair %d: warm transfer paid Setup %v", i, rep.Breakdown.Setup)
				}
				verifyDelivery(t, dsts[i], ref, n)
			}
		}(i)
	}
	wg.Wait()

	// Each warm transfer: 1 vmsplice + 1 splice (source) + 1 splice +
	// 1 readrefs (target) for the single sub-hose chunk = 4 syscalls.
	for i := 0; i < pairs; i++ {
		delta := srcShims[i].Account().Snapshot().Syscalls + dstShims[i].Account().Snapshot().Syscalls - before[i]
		if delta != 4*iters {
			t.Fatalf("pair %d: %d syscalls across %d warm transfers, want %d", i, delta, iters, 4*iters)
		}
	}
}

// TestChannelIdleAndLRUEviction exercises both eviction triggers with an
// injected clock: idle channels die on the next acquisition, and the
// registry never grows past ChannelCap.
func TestChannelIdleAndLRUEviction(t *testing.T) {
	// The pipelined engine reads the clock from both stage goroutines, so
	// injected clocks must be safe for concurrent use (see ShimConfig.Now).
	var clockMu sync.Mutex
	clock := time.Unix(0, 0)
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		clock = clock.Add(time.Microsecond)
		return clock
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}
	k1 := kernel.New("edge")
	mk := func(name string, k *kernel.Kernel, cap int) *core.Shim {
		s, err := core.NewShim(core.ShimConfig{
			Name: name, Workflow: wf, Kernel: k, Module: guest.Module(),
			Now: now, ChannelIdle: time.Second, ChannelCap: cap,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s
	}
	src := mk("src", k1, 1)
	fa := addFn(t, src, "a")
	kb, kc := kernel.New("cloud-b"), kernel.New("cloud-c")
	sb, sc := mk("sb", kb, 4), mk("sc", kc, 4)
	fb, fc := addFn(t, sb, "b"), addFn(t, sc, "c")
	const n = 4 << 10
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}

	// LRU: ChannelCap is 1, so the a→c channel evicts a→b.
	if _, _, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{}); err != nil {
		t.Fatal(err)
	}
	fbFDs := sb.Proc().NumFDs()
	if _, _, err := core.NetworkTransfer(fa, fc, core.NetworkOptions{}); err != nil {
		t.Fatal(err)
	}
	st := src.ChannelStats()
	if st.Active != 1 || st.Evictions != 1 || st.Misses != 2 {
		t.Fatalf("after LRU eviction: %+v", st)
	}
	if got := sb.Proc().NumFDs(); got != fbFDs-3 {
		t.Fatalf("evicted target still holds FDs: %d, want %d", got, fbFDs-3)
	}

	// Idle: advance past ChannelIdle; the next acquisition (for b) evicts
	// the stale a→c channel and the re-established a→b channel misses.
	advance(2 * time.Second)
	if _, _, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{}); err != nil {
		t.Fatal(err)
	}
	st = src.ChannelStats()
	if st.Active != 1 || st.Evictions != 2 || st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("after idle eviction: %+v", st)
	}

	// Warm reuse within the idle window is a hit.
	if _, _, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{}); err != nil {
		t.Fatal(err)
	}
	if st = src.ChannelStats(); st.Hits != 1 {
		t.Fatalf("warm reuse not counted as hit: %+v", st)
	}

	// Same-pair staleness: acquiring the pair whose own channel went idle
	// evicts and re-establishes it — the ChannelIdle contract holds even
	// when no other pair ever triggers a scan.
	advance(2 * time.Second)
	if _, _, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{}); err != nil {
		t.Fatal(err)
	}
	st = src.ChannelStats()
	if st.Evictions != 3 || st.Misses != 4 || st.Hits != 1 {
		t.Fatalf("after same-pair idle eviction: %+v", st)
	}
}

// TestMulticastWiderThanChannelCap: a fan-out to more targets than the
// source shim's ChannelCap must not evict its own in-flight channels while
// acquiring the later ones (regression: the LRU victim used to be the
// multicast's own shared hose, failing the transfer with EBADF). The
// registry may briefly exceed the cap while pinned; the next acquisition
// trims it back.
func TestMulticastWiderThanChannelCap(t *testing.T) {
	const degree, n = 4, 64 << 10
	kSrc := kernel.New("edge")
	src, err := core.NewShim(core.ShimConfig{
		Name: "src", Workflow: wf, Kernel: kSrc, Module: guest.Module(),
		ChannelCap: 2, // far smaller than the fan-out degree
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(src.Close)
	fa := addFn(t, src, "a")
	dsts := make([]*core.Function, degree)
	for i := range dsts {
		sd := newShim(t, fmt.Sprintf("t%d", i), kernel.New(fmt.Sprintf("cloud-%d", i)))
		dsts[i] = addFn(t, sd, fmt.Sprintf("f%d", i))
	}
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		refs, _, err := core.MulticastTransfer(fa, dsts, core.MulticastOptions{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, dst := range dsts {
			verifyDelivery(t, dst, refs[i], n)
		}
	}
}

// TestShimCloseTearsDownChannelsBothDirections: closing either endpoint of
// a cached channel releases the descriptors held in the *other* shim's
// sandbox too — nothing dangles after teardown.
func TestShimCloseTearsDownChannelsBothDirections(t *testing.T) {
	k1, k2 := kernel.New("edge"), kernel.New("cloud")
	s1, s2 := newShim(t, "s1", k1), newShim(t, "s2", k2)
	fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
	if _, err := fa.CallPacked(guest.ExportProduce, 64<<10); err != nil {
		t.Fatal(err)
	}
	dstBase := s2.Proc().NumFDs()
	if _, _, err := core.NetworkTransfer(fa, fb, core.NetworkOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := s2.Proc().NumFDs(); got != dstBase+3 {
		t.Fatalf("cached channel holds %d target FDs, want 3", got-dstBase)
	}
	// Closing the SOURCE shim must close the descriptors the channel pinned
	// in the target's FD table.
	s1.Close()
	if got := s2.Proc().NumFDs(); got != dstBase {
		t.Fatalf("after source close, target holds %d extra FDs", got-dstBase)
	}
	if res := k1.Pool().Resident() + k2.Pool().Resident(); res != 0 {
		t.Fatalf("leaked %d resident bytes", res)
	}
}

// errInjected is the sentinel the fault hook fails syscalls with.
var errInjected = errors.New("injected fault")

// faultEnv is one freshly deployed transfer scenario for error injection.
type faultEnv struct {
	kernels []*kernel.Kernel
	shims   []*core.Shim
	run     func() error
}

func (e *faultEnv) procs() []*kernel.Proc {
	ps := make([]*kernel.Proc, len(e.shims))
	for i, s := range e.shims {
		ps[i] = s.Proc()
	}
	return ps
}

// TestTransferErrorPathsConserveFDsAndPages drives every transfer mode
// through each of its data-plane failure points (via the kernel's fault
// hook) and asserts that no file descriptors and no resident pool pages
// survive the failure: error returns destroy the (possibly poisoned)
// channel instead of leaking its descriptors or stranded payload pages.
func TestTransferErrorPathsConserveFDsAndPages(t *testing.T) {
	const n = 600 << 10 // two hose chunks for the 512 KiB hose below

	build := func(t *testing.T, mode string) *faultEnv {
		mkShim := func(name string, k *kernel.Kernel) *core.Shim {
			s, err := core.NewShim(core.ShimConfig{
				Name: name, Workflow: wf, Kernel: k, Module: guest.Module(),
				DataHoseBytes: 512 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(s.Close)
			return s
		}
		switch mode {
		case "kernel":
			k := kernel.New("node")
			s1, s2 := mkShim("s1", k), mkShim("s2", k)
			fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
			if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
				t.Fatal(err)
			}
			return &faultEnv{kernels: []*kernel.Kernel{k}, shims: []*core.Shim{s1, s2}, run: func() error {
				_, _, err := core.KernelSpaceTransfer(fa, fb, core.KernelOptions{})
				return err
			}}
		case "network", "network-copy", "network-uncached":
			k1, k2 := kernel.New("edge"), kernel.New("cloud")
			s1, s2 := mkShim("s1", k1), mkShim("s2", k2)
			fa, fb := addFn(t, s1, "a"), addFn(t, s2, "b")
			if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
				t.Fatal(err)
			}
			opts := core.NetworkOptions{
				ForceCopyPath:  mode == "network-copy",
				NoChannelCache: mode == "network-uncached",
			}
			return &faultEnv{kernels: []*kernel.Kernel{k1, k2}, shims: []*core.Shim{s1, s2}, run: func() error {
				_, _, err := core.NetworkTransfer(fa, fb, opts)
				return err
			}}
		case "multicast":
			k1 := kernel.New("edge")
			s1 := mkShim("src", k1)
			fa := addFn(t, s1, "a")
			kernels := []*kernel.Kernel{k1}
			shims := []*core.Shim{s1}
			var targets []*core.Function
			for i := 0; i < 2; i++ {
				kd := kernel.New(fmt.Sprintf("cloud-%d", i))
				sd := mkShim(fmt.Sprintf("t%d", i), kd)
				kernels = append(kernels, kd)
				shims = append(shims, sd)
				targets = append(targets, addFn(t, sd, fmt.Sprintf("f%d", i)))
			}
			if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
				t.Fatal(err)
			}
			return &faultEnv{kernels: kernels, shims: shims, run: func() error {
				_, _, err := core.MulticastTransfer(fa, targets, core.MulticastOptions{})
				return err
			}}
		default:
			t.Fatalf("unknown mode %s", mode)
			return nil
		}
	}

	for _, mode := range []string{"kernel", "network", "network-copy", "network-uncached", "multicast"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			// Pass 1: count the data-plane ops of a successful transfer.
			// The pipelined stages run concurrently, so the counter is
			// atomic.
			env := build(t, mode)
			var total atomic.Int64
			for _, p := range env.procs() {
				p.InjectFault(func(string) error { total.Add(1); return nil })
			}
			if err := env.run(); err != nil {
				t.Fatalf("counting run: %v", err)
			}
			if total.Load() == 0 {
				t.Fatal("no data-plane ops observed")
			}

			// Pass 2: fail each op in turn on a fresh deployment; FDs and
			// pool pages must return to their pre-transfer levels. With the
			// overlapped stages the k-th op overall is not deterministic
			// across runs, but sweeping k over the op count still drives
			// every failure point on both sides.
			for k := int64(0); k < total.Load(); k++ {
				env := build(t, mode)
				procs := env.procs()
				baseline := make([]int, len(procs))
				for i, p := range procs {
					baseline[i] = p.NumFDs()
				}
				var step atomic.Int64
				for _, p := range procs {
					p.InjectFault(func(string) error {
						if step.Add(1)-1 == k {
							return errInjected
						}
						return nil
					})
				}
				err := env.run()
				for _, p := range procs {
					p.InjectFault(nil)
				}
				if !errors.Is(err, errInjected) {
					t.Fatalf("op %d: error = %v, want injected fault", k, err)
				}
				for i, p := range procs {
					if got := p.NumFDs(); got != baseline[i] {
						t.Fatalf("op %d: proc %d holds %d FDs, want %d", k, i, got, baseline[i])
					}
				}
				for _, kk := range env.kernels {
					if res := kk.Pool().Resident(); res != 0 {
						t.Fatalf("op %d: %d resident pool bytes leaked", k, res)
					}
				}
			}
		})
	}
}
