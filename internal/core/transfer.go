package core

import (
	"fmt"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
)

// ErrSameVM signals a kernel/network transfer attempted between functions of
// one VM, where user-space transfer applies instead.
var ErrSameVM = fmt.Errorf("core: functions share a Wasm VM; use user-space transfer")

// InboundRef locates data the shim delivered into a target function's linear
// memory.
type InboundRef struct {
	Ptr uint32
	Len uint32
}

// UserSpaceTransfer moves the source function's current output into the
// target function within the same Wasm VM (§4.1, Fig. 4a):
//
//  1. locate_memory_region on the source,
//  2. read_output through the shim's zero-copy view,
//  3. allocate_memory in the target,
//  4. write_output into the target's linear memory.
//
// One user-space copy total, no serialization, no kernel involvement.
func UserSpaceTransfer(src, dst *Function) (InboundRef, metrics.TransferReport, error) {
	if src.shim != dst.shim {
		return InboundRef{}, metrics.TransferReport{}, ErrDifferentVM
	}
	if src.shim.workflow != dst.shim.workflow {
		return InboundRef{}, metrics.TransferReport{}, ErrWorkflowMismatch
	}
	s := src.shim
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.acct.Snapshot()
	sw := metrics.NewStopwatch(s.now)

	out, err := src.locateQuiet()
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	view, err := src.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	dstPtr, err := dst.view.Allocate(out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	if err := dst.view.Write(view, dstPtr); err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}

	elapsed := sw.Lap()
	s.acct.CPU(metrics.User, elapsed)
	report := metrics.TransferReport{
		Bytes:     int64(out.Len),
		Breakdown: metrics.Breakdown{WasmIO: elapsed},
		Usage:     s.acct.Snapshot().Sub(before),
		Mode:      "user",
	}
	return InboundRef{Ptr: dstPtr, Len: out.Len}, report, nil
}

// KernelOptions tunes a kernel-space transfer.
type KernelOptions struct {
	// NoChannelCache forces per-call socketpair establishment and teardown
	// (the pre-cache behavior; the cold-path ablation). By default the IPC
	// channel is a persistent cached socketpair reused across transfers of
	// the same shim pair.
	NoChannelCache bool
}

// KernelSpaceTransfer moves the source's output to a function in a different
// sandbox on the same host via Unix-socket IPC (§4.2, Fig. 4b; §5 uses Unix
// sockets as the IPC mechanism). The payload crosses the kernel exactly
// twice — copy_from_user on send, copy directly into the target's linear
// memory on receive — with no serialization. The socketpair is a cached
// channel: only the first transfer of a pair pays the establishment syscall
// (reported as the Setup breakdown component); warm transfers touch the
// kernel exactly twice, once per payload crossing.
func KernelSpaceTransfer(src, dst *Function, opts KernelOptions) (InboundRef, metrics.TransferReport, error) {
	if src.shim == dst.shim {
		return InboundRef{}, metrics.TransferReport{}, ErrSameVM
	}
	if src.shim.Kernel() != dst.shim.Kernel() {
		return InboundRef{}, metrics.TransferReport{}, ErrDifferentNode
	}
	srcShim, dstShim := src.shim, dst.shim
	locked := lockShims(srcShim, dstShim)
	defer unlockShims(locked)
	beforeSrc := srcShim.acct.Snapshot()
	beforeDst := dstShim.acct.Snapshot()
	var breakdown metrics.Breakdown

	// Step 1-2: locate + zero-copy read of the source region (Wasm IO).
	swIO := metrics.NewStopwatch(srcShim.now)
	out, err := src.locateQuiet()
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	view, err := src.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	breakdown.WasmIO = swIO.Lap()
	srcShim.acct.CPU(metrics.User, breakdown.WasmIO)

	// Step 3: acquire the IPC channel between the two shims.
	ch, setup, finish, err := acquireTransferChannel(srcShim, dstShim, chanKernel, opts.NoChannelCache)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("ipc channel: %w", err)
	}
	breakdown.Setup = setup
	healthy := false
	defer func() { finish(healthy) }()

	swT := metrics.NewStopwatch(srcShim.now)
	if _, err := srcShim.proc.Write(ch.fdA, view); err != nil {
		return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("ipc send: %w", err)
	}
	transfer := swT.Lap()
	srcShim.acct.CPU(metrics.Kernel, transfer)

	// Steps 4-6: allocate in the target and receive straight into its
	// linear memory.
	swIO2 := metrics.NewStopwatch(dstShim.now)
	dstPtr, err := dst.view.Allocate(out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	allocT := swIO2.Lap()
	dstShim.acct.CPU(metrics.User, allocT)
	breakdown.WasmIO += allocT
	swR := metrics.NewStopwatch(dstShim.now)
	wv, err := dst.view.WritableView(dstPtr, out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	for off := 0; off < len(wv); {
		n, err := dstShim.proc.Read(ch.fdB, wv[off:])
		if err != nil {
			return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("ipc recv: %w", err)
		}
		if n == 0 {
			// A zero-progress read means the channel can never deliver the
			// remaining bytes; looping would spin forever.
			return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("ipc recv: zero-progress read: %w", kernel.ErrClosed)
		}
		off += n
	}
	recvT := swR.Lap()
	dstShim.acct.CPU(metrics.Kernel, recvT)
	transfer += recvT
	healthy = true

	usage := srcShim.acct.Snapshot().Sub(beforeSrc).Add(dstShim.acct.Snapshot().Sub(beforeDst))
	// Modeled mode-switch overhead for the syscalls this path issued.
	sysT := srcShim.Kernel().SyscallTime(usage.Syscalls)
	transfer += sysT
	breakdown.Transfer = transfer

	report := metrics.TransferReport{
		Bytes:     int64(out.Len),
		Breakdown: breakdown,
		Usage:     usage,
		Mode:      "kernel",
	}
	return InboundRef{Ptr: dstPtr, Len: out.Len}, report, nil
}
