package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
)

// ErrSameVM signals a kernel/network transfer attempted between functions of
// one VM, where user-space transfer applies instead.
var ErrSameVM = fmt.Errorf("core: functions share a Wasm VM; use user-space transfer")

// InboundRef locates data the shim delivered into a target function's linear
// memory.
type InboundRef struct {
	Ptr uint32
	Len uint32
}

// ingressAbort rewinds an aborted ingress stage: the drain holds the VM
// lock, so dstPtr is the VM's top allocation and handing it back leaves the
// target's bump heap where the transfer found it. Shared by every ingress
// failure path — cancellation, a faulted syscall, a dead channel.
func ingressAbort(f *Function, dstPtr uint32, err error) (InboundRef, error) {
	_ = f.view.Deallocate(dstPtr)
	return InboundRef{}, err
}

// UserOptions tunes a user-space transfer.
type UserOptions struct {
	// Ctx cancels the transfer; nil means never cancelled. The user-space
	// path is a single locked stage, so cancellation is only observed at
	// entry.
	Ctx context.Context
	// SourceRef pins the source region to transfer instead of asking the
	// guest for its latest output: set_output + locate run atomically
	// inside the transfer, which is what lets streaming chains hand a
	// delivered region to the next hop without a race window (see
	// Function.sourceOutput).
	SourceRef *OutputRef
}

// UserSpaceTransfer moves the source function's current output into the
// target function within the same Wasm VM (§4.1, Fig. 4a):
//
//  1. locate_memory_region on the source,
//  2. read_output through the shim's zero-copy view,
//  3. allocate_memory in the target,
//  4. write_output into the target's linear memory.
//
// One user-space copy total, no serialization, no kernel involvement. Both
// functions live in one VM, so the single VM lock covers the whole move —
// the degenerate (stage-less) case of the pipeline.
func UserSpaceTransfer(src, dst *Function, opts UserOptions) (InboundRef, metrics.TransferReport, error) {
	if src.shim != dst.shim {
		return InboundRef{}, metrics.TransferReport{}, ErrDifferentVM
	}
	if src.shim.workflow != dst.shim.workflow {
		return InboundRef{}, metrics.TransferReport{}, ErrWorkflowMismatch
	}
	if err := CtxErr(opts.Ctx); err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	s := src.shim
	s.mu.Lock()
	defer s.mu.Unlock()
	before := s.acct.Snapshot()
	sw := metrics.NewStopwatch(s.now)

	out, err := src.sourceOutput(opts.SourceRef)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	view, err := src.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	dstPtr, err := dst.view.Allocate(out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	if err := dst.view.Write(view, dstPtr); err != nil {
		// The copy never landed; rewind the destination's bump heap (the
		// region is its top allocation) so the aborted transfer leaves the
		// target where it found it.
		if derr := dst.view.Deallocate(dstPtr); derr != nil {
			err = errors.Join(err, derr)
		}
		return InboundRef{}, metrics.TransferReport{}, err
	}

	elapsed := sw.Lap()
	s.acct.CPU(metrics.User, elapsed)
	report := metrics.TransferReport{
		Bytes:     int64(out.Len),
		Breakdown: metrics.Breakdown{WasmIO: elapsed},
		Usage:     s.acct.Snapshot().Sub(before),
		Mode:      "user",
	}
	return InboundRef{Ptr: dstPtr, Len: out.Len}, report, nil
}

// KernelOptions tunes a kernel-space transfer.
type KernelOptions struct {
	// Ctx cancels the transfer; nil means never cancelled. Cancellation is
	// observed at pipeline entry, at the stage boundary, and at each read
	// of the ingress drain loop; an aborted transfer destroys the pair's
	// channel exactly as every other transfer failure does.
	Ctx context.Context
	// NoChannelCache forces per-call socketpair establishment and teardown
	// (the pre-cache behavior; the cold-path ablation). By default the IPC
	// channel is a persistent cached socketpair reused across transfers of
	// the same shim pair.
	NoChannelCache bool
	// PhaseLocked runs the transfer in the pre-pipeline regime — both VM
	// locks held for the whole operation, send-all strictly before
	// receive-all — kept as the ablation baseline for the staged pipeline.
	PhaseLocked bool
	// SourceRef pins the source region (see UserOptions.SourceRef).
	SourceRef *OutputRef
	// Gates carries test instrumentation (see PipelineGates).
	Gates *PipelineGates
}

// kernelOps is the kernel-mode stage pair. A zero-size stateless type:
// everything the stages need travels in the pipelineState, so a warm
// transfer builds no per-call closures.
type kernelOps struct{}

// egress is steps 1-2 then the send half: locate + zero-copy read of the
// source region (Wasm IO), one copy_from_user into the socketpair. Runs
// under the source VM lock.
func (kernelOps) egress(st *pipelineState) (OutputRef, error) {
	f := st.spec.src
	s := f.shim
	swIO := metrics.NewStopwatch(s.now)
	out, err := f.sourceOutput(st.spec.sourceRef)
	if err != nil {
		return OutputRef{}, err
	}
	view, err := f.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return OutputRef{}, err
	}
	ioT := swIO.Lap()
	s.acct.CPU(metrics.User, ioT)
	st.em.wasmIO += ioT
	st.announce(out)

	swT := metrics.NewStopwatch(s.now)
	if _, err := s.proc.Write(st.ch.fdA, view); err != nil {
		return OutputRef{}, fmt.Errorf("ipc send: %w", err)
	}
	sendT := swT.Lap()
	s.acct.CPU(metrics.Kernel, sendT)
	st.em.transfer += sendT
	return out, nil
}

// ingress is steps 4-6: allocate in the target and receive straight into
// its linear memory. Runs under the target VM lock.
func (kernelOps) ingress(st *pipelineState, out OutputRef) (InboundRef, error) {
	f := st.spec.dst
	s := f.shim
	swIO := metrics.NewStopwatch(s.now)
	dstPtr, err := f.view.Allocate(out.Len)
	if err != nil {
		return InboundRef{}, err
	}
	allocT := swIO.Lap()
	s.acct.CPU(metrics.User, allocT)
	st.im.wasmIO += allocT

	swR := metrics.NewStopwatch(s.now)
	wv, err := f.view.WritableView(dstPtr, out.Len)
	if err != nil {
		return ingressAbort(f, dstPtr, err)
	}
	for off := 0; off < len(wv); {
		if err := CtxErr(st.spec.ctx); err != nil {
			return ingressAbort(f, dstPtr, err)
		}
		n, err := s.proc.Read(st.ch.fdB, wv[off:])
		if err != nil {
			return ingressAbort(f, dstPtr, fmt.Errorf("ipc recv: %w", err))
		}
		if n == 0 {
			// A zero-progress read means the channel can never deliver the
			// remaining bytes; looping would spin forever.
			return ingressAbort(f, dstPtr, fmt.Errorf("ipc recv: zero-progress read: %w", kernel.ErrClosed))
		}
		off += n
	}
	recvT := swR.Lap()
	s.acct.CPU(metrics.Kernel, recvT)
	st.im.transfer += recvT
	return InboundRef{Ptr: dstPtr, Len: out.Len}, nil
}

// KernelSpaceTransfer moves the source's output to a function in a different
// sandbox on the same host via Unix-socket IPC (§4.2, Fig. 4b; §5 uses Unix
// sockets as the IPC mechanism). The payload crosses the kernel exactly
// twice — copy_from_user on send, copy directly into the target's linear
// memory on receive — with no serialization. The socketpair is a cached
// channel: only the first transfer of a pair pays the establishment syscall
// (reported as the Setup breakdown component); warm transfers touch the
// kernel exactly twice, once per payload crossing.
//
// The transfer runs as a staged pipeline (pipeline.go): the source VM is
// locked only for copy_from_user, the target VM only while the socket
// drains into its linear memory, and the two stages overlap.
func KernelSpaceTransfer(src, dst *Function, opts KernelOptions) (InboundRef, metrics.TransferReport, error) {
	if src.shim == dst.shim {
		return InboundRef{}, metrics.TransferReport{}, ErrSameVM
	}
	if src.shim.Kernel() != dst.shim.Kernel() {
		return InboundRef{}, metrics.TransferReport{}, ErrDifferentNode
	}
	spec := pipelineSpec{
		mode:        "kernel",
		kind:        chanKernel,
		perCall:     opts.NoChannelCache,
		phaseLocked: opts.PhaseLocked,
		ctx:         opts.Ctx,
		gates:       opts.Gates,
		src:         src,
		dst:         dst,
		sourceRef:   opts.SourceRef,
		ops:         kernelOps{},
	}
	return runPipeline(&spec)
}
