// Package core implements Roadrunner itself: the sidecar shim that manages
// Wasm VM lifecycles (§3.2.5), the data-access model of §3.1, and the three
// inter-function data-transfer mechanisms of §4 — user space (same Wasm VM),
// kernel space (co-located sandboxes over IPC) and network (the
// vmsplice/splice virtual data hose of Algorithm 1).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/abi"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasi"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasm"
)

// Transfer-mode and trust errors.
var (
	ErrDifferentVM      = errors.New("core: user-space transfer requires functions in the same Wasm VM")
	ErrWorkflowMismatch = errors.New("core: functions belong to different workflows/tenants")
	ErrDifferentNode    = errors.New("core: kernel-space transfer requires co-located functions")
	ErrSameNode         = errors.New("core: network transfer connects functions on different nodes")
	ErrNoOutput         = errors.New("core: source function has not produced an output")
)

// Workflow identifies a trusted execution context: only functions of the
// same workflow and tenant may share a Wasm VM (§3.1 "Shared Memory").
type Workflow struct {
	Name   string
	Tenant string
}

// Bundle is the OCI-style runtime-bundle metadata the shim packages each
// Wasm VM with, enabling containerd-compatible deployment (§3.2.2).
type Bundle struct {
	SpecVersion string
	ID          string
	BinaryBytes int
	Annotations map[string]string
}

// ShimConfig configures one sidecar shim.
type ShimConfig struct {
	// Name identifies the shim (and its sandbox process).
	Name string
	// Workflow is the trusted context functions in this shim belong to.
	Workflow Workflow
	// Kernel is the host kernel of the node the shim is placed on.
	Kernel *kernel.Kernel
	// Module is the guest binary loaded into each function.
	Module []byte
	// Now injects a clock (nil = time.Now). The staged pipeline reads the
	// clock from both stage goroutines, so injected clocks must be safe
	// for concurrent use.
	Now func() time.Time
	// DataHoseBytes sizes the shim's virtual-data-hose pipes
	// (0 = 4 MiB, set via the simulated F_SETPIPE_SZ).
	DataHoseBytes int
	// ChannelIdle bounds how long an unused cached channel (persistent
	// data hose, see channels.go) survives before the next acquisition
	// evicts it (0 = DefaultChannelIdle).
	ChannelIdle time.Duration
	// ChannelCap bounds the cached channels this shim originates; the
	// least recently used is evicted beyond it (0 = DefaultChannelCap).
	ChannelCap int
}

// Shim is the Roadrunner sidecar: it owns one sandbox process and one Wasm
// VM, loads function modules into the VM, and mediates every data movement
// in and out of linear memory (§3.2).
//
// A shim's VM runs one guest activation at a time, like a single-threaded
// Wasm runtime: every guest entry and every view over linear memory is
// serialized by the VM lock. Transfers between functions of disjoint shims
// share no VM state and proceed fully in parallel.
type Shim struct {
	name     string
	workflow Workflow
	proc     *kernel.Proc
	acct     *metrics.Account
	wasiHost *wasi.Host
	bundle   Bundle
	now      func() time.Time
	hoseCap  int

	// seq is the shim's position in the global lock order (see lockShims).
	seq uint64
	// mu is the VM lock: it guards functions, coldStart, every guest call
	// and every view over the VM's linear memory (including Function.out).
	mu sync.Mutex

	module []byte
	//roadvet:guards mu
	functions []*Function
	//roadvet:guards mu
	coldStart time.Duration

	// Channel-cache registry (see channels.go). chanMu is a leaf lock: it
	// is never held while acquiring any other lock.
	chanMu sync.Mutex
	//roadvet:guards chanMu
	channels map[chanKey]*channel // persistent hoses this shim originates
	//roadvet:guards chanMu
	inbound map[*channel]struct{} // persistent hoses targeting this shim
	//roadvet:guards chanMu
	pairMu map[chanKey]*sync.Mutex
	//roadvet:guards chanMu
	chanHits int64
	//roadvet:guards chanMu
	chanMisses int64
	//roadvet:guards chanMu
	chanEvictions int64
	chanIdle      time.Duration
	chanCap       int
}

// shimSeq issues lock-order positions; creation order is the lock order.
var shimSeq atomic.Uint64

// distinctBySeq deduplicates shims and orders them by ascending creation
// sequence — THE global lock order. Both whole-transfer VM locking
// (lockShims) and multicast pair-lock acquisition derive their ordering
// from this one definition, so the deadlock-freedom invariant cannot drift
// between them.
func distinctBySeq(shims []*Shim) []*Shim {
	distinct := shims[:0:0]
	for _, s := range shims {
		dup := false
		for _, d := range distinct {
			if d == s {
				dup = true
				break
			}
		}
		if !dup {
			distinct = append(distinct, s)
		}
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i].seq < distinct[j].seq })
	return distinct
}

// lockShims acquires the VM locks of every distinct shim in ascending
// creation order — the single global lock order that keeps multi-shim
// phase-locked transfers deadlock-free no matter which pairs overlap. The
// returned slice (deduplicated, sorted) is what unlockShims expects.
func lockShims(shims ...*Shim) []*Shim {
	distinct := distinctBySeq(shims)
	for _, s := range distinct {
		s.mu.Lock()
	}
	return distinct
}

// unlockShims releases locks taken by lockShims (any order is safe).
func unlockShims(locked []*Shim) {
	for _, s := range locked {
		s.mu.Unlock()
	}
}

// NewShim creates the shim's sandbox and prepares the Wasm runtime. The
// measured duration (sandbox creation + runtime configuration) counts toward
// cold start, as in Fig. 2a.
func NewShim(cfg ShimConfig) (*Shim, error) {
	if cfg.Kernel == nil {
		return nil, errors.New("core: shim requires a kernel")
	}
	if len(cfg.Module) == 0 {
		return nil, errors.New("core: shim requires a guest module binary")
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	hose := cfg.DataHoseBytes
	if hose <= 0 {
		hose = 4 << 20
	}
	chanIdle := cfg.ChannelIdle
	if chanIdle <= 0 {
		chanIdle = DefaultChannelIdle
	}
	chanCap := cfg.ChannelCap
	if chanCap <= 0 {
		chanCap = DefaultChannelCap
	}
	sw := metrics.NewStopwatch(now)
	acct := &metrics.Account{}
	proc := cfg.Kernel.NewProc(cfg.Name, acct)
	s := &Shim{
		name:     cfg.Name,
		seq:      shimSeq.Add(1),
		workflow: cfg.Workflow,
		proc:     proc,
		acct:     acct,
		wasiHost: wasi.NewHost(proc, acct),
		now:      now,
		hoseCap:  hose,
		chanIdle: chanIdle,
		chanCap:  chanCap,
		module:   cfg.Module,
		bundle: Bundle{
			SpecVersion: "1.0.2",
			ID:          "roadrunner-" + cfg.Name,
			BinaryBytes: len(cfg.Module),
			Annotations: map[string]string{
				"io.roadrunner.workflow": cfg.Workflow.Name,
				"io.roadrunner.tenant":   cfg.Workflow.Tenant,
			},
		},
	}
	//roadvet:unguarded fresh Shim: not yet published to any other goroutine
	s.coldStart = sw.Lap()
	return s, nil
}

// AddFunction loads the shim's module into the Wasm VM as a new function
// instance (Fig. 4a: one VM may hold several modules of the same workflow).
// Instantiation time is added to the shim's cold start.
func (s *Shim) AddFunction(name string) (*Function, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := metrics.NewStopwatch(s.now)
	m, err := wasm.Decode(s.module)
	if err != nil {
		return nil, fmt.Errorf("decode module for %s: %w", name, err)
	}

	f := &Function{name: name, shim: s}
	imports := wasm.Imports{}
	s.wasiHost.AddImports(imports)
	imports.Add(abi.ImportModule, abi.ImportSendToHost, abi.SendToHostImport(func(ptr, n uint32) {
		if f.view != nil {
			f.view.RegisterOutput(ptr, n)
			f.out = OutputRef{Ptr: ptr, Len: n}
			f.hasOut = true
		}
	}))

	inst, err := wasm.Instantiate(m, imports, &wasm.Config{
		MemoryResizeHook: func(delta int64) { s.acct.Allocate(delta) },
	})
	if err != nil {
		return nil, fmt.Errorf("instantiate %s: %w", name, err)
	}
	view, err := abi.NewView(inst, s.acct)
	if err != nil {
		return nil, fmt.Errorf("bind ABI for %s: %w", name, err)
	}
	f.inst = inst
	f.view = view
	s.functions = append(s.functions, f)
	d := sw.Lap()
	s.coldStart += d
	s.acct.CPU(metrics.User, d)
	return f, nil
}

// Name returns the shim name.
func (s *Shim) Name() string { return s.name }

// Workflow returns the shim's trusted workflow context.
func (s *Shim) Workflow() Workflow { return s.workflow }

// Kernel returns the node kernel the shim runs on.
func (s *Shim) Kernel() *kernel.Kernel { return s.proc.Kernel() }

// Proc returns the shim's sandbox process.
func (s *Shim) Proc() *kernel.Proc { return s.proc }

// Account returns the shim's resource account (the per-sandbox "cgroup").
func (s *Shim) Account() *metrics.Account { return s.acct }

// WASI returns the shim's WASI host (used to preload files for guests).
func (s *Shim) WASI() *wasi.Host { return s.wasiHost }

// Bundle returns the shim's OCI-style bundle metadata.
func (s *Shim) Bundle() Bundle { return s.bundle }

// ColdStart reports the accumulated sandbox + VM initialization time.
func (s *Shim) ColdStart() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coldStart
}

// Close tears down the shim's cached channels (both directions) and then
// the sandbox with every descriptor it still holds.
func (s *Shim) Close() {
	s.closeChannels()
	s.proc.CloseAll()
}

// OutputRef is a guest-announced (pointer, length) output region.
type OutputRef struct {
	Ptr uint32
	Len uint32
}

// Function is one Wasm function instance managed by a shim.
type Function struct {
	name string
	shim *Shim
	inst *wasm.Instance
	view *abi.View
	// out is the function's current output region, valid when hasOut is
	// set. A value field rather than a pointer: locate runs on every
	// transfer, and re-boxing the region each time was a per-transfer heap
	// allocation.
	out    OutputRef
	hasOut bool
}

// Name returns the function name.
func (f *Function) Name() string { return f.name }

// Shim returns the managing shim.
func (f *Function) Shim() *Shim { return f.shim }

// View exposes the shim's mediated memory view (for advanced embedders).
// The view is not synchronized: callers that use it directly must not race
// with transfers or guest calls on the same VM (prefer Call/Deallocate,
// which take the VM lock).
func (f *Function) View() *abi.View { return f.view }

// Instance returns the function's Wasm instance.
func (f *Function) Instance() *wasm.Instance { return f.inst }

// Output returns the function's current output region.
func (f *Function) Output() (OutputRef, error) {
	f.shim.mu.Lock()
	defer f.shim.mu.Unlock()
	if !f.hasOut {
		return OutputRef{}, fmt.Errorf("%s: %w", f.name, ErrNoOutput)
	}
	return f.out, nil
}

// call runs a guest export, measuring its duration as user CPU. Callers hold
// the shim's VM lock.
func (f *Function) call(name string, args ...uint64) ([]uint64, error) {
	sw := metrics.NewStopwatch(f.shim.now)
	res, err := f.inst.Call(name, args...)
	f.shim.acct.CPU(metrics.User, sw.Lap())
	return res, err
}

// callPacked is CallPacked without the VM lock, for transfer paths that
// already hold it.
func (f *Function) callPacked(name string, args ...uint64) (OutputRef, error) {
	sw := metrics.NewStopwatch(f.shim.now)
	ptr, n, err := f.view.CallPacked(name, args...)
	f.shim.acct.CPU(metrics.User, sw.Lap())
	if err != nil {
		return OutputRef{}, fmt.Errorf("%s: %s: %w", f.name, name, err)
	}
	f.out = OutputRef{Ptr: ptr, Len: n}
	f.hasOut = true
	return f.out, nil
}

// CallPacked invokes a packed-result guest export (produce/serialize style),
// registering and recording the output region.
func (f *Function) CallPacked(name string, args ...uint64) (OutputRef, error) {
	f.shim.mu.Lock()
	defer f.shim.mu.Unlock()
	return f.callPacked(name, args...)
}

// Call invokes any guest export, charging guest time as user CPU. The
// results are copied before the VM lock drops: the interpreter's return
// slice aliases a recycled call frame that the next call on this VM
// overwrites, and unlike the transfer paths (which consume results while
// still holding the lock) Call's callers read them afterwards.
func (f *Function) Call(name string, args ...uint64) ([]uint64, error) {
	f.shim.mu.Lock()
	defer f.shim.mu.Unlock()
	res, err := f.call(name, args...)
	if len(res) > 0 {
		res = append([]uint64(nil), res...)
	}
	return res, err
}

// Deallocate returns a delivered region to the guest allocator
// (deallocate_memory), rewinding the bump heap when the region is the most
// recent live allocation.
func (f *Function) Deallocate(ptr uint32) error {
	f.shim.mu.Lock()
	defer f.shim.mu.Unlock()
	return f.view.Deallocate(ptr)
}

// Locate asks the guest for its output region (locate_memory_region),
// step 1 of every transfer (Fig. 4).
func (f *Function) Locate() (OutputRef, error) {
	f.shim.mu.Lock()
	defer f.shim.mu.Unlock()
	sw := metrics.NewStopwatch(f.shim.now)
	out, err := f.locateQuiet()
	f.shim.acct.CPU(metrics.User, sw.Lap())
	return out, err
}

// locateQuiet performs Locate without charging CPU; the transfer paths
// measure and charge the surrounding window themselves. Callers hold the
// shim's VM lock.
func (f *Function) locateQuiet() (OutputRef, error) {
	ptr, n, err := f.view.Locate()
	if err != nil {
		return OutputRef{}, err
	}
	f.out = OutputRef{Ptr: ptr, Len: n}
	f.hasOut = true
	return f.out, nil
}
