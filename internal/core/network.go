package core

import (
	"context"
	"fmt"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/pagebuf"
)

// NetworkOptions tunes a network-mode transfer.
type NetworkOptions struct {
	// Ctx cancels the transfer; nil means never cancelled. Cancellation is
	// observed at pipeline entry, at the stage boundary, and at every hose
	// chunk of both stage loops; an aborted transfer destroys the pair's
	// channel (draining stranded pages) exactly as other failures do.
	Ctx context.Context
	// Link is the modeled network path between the two nodes; nil means
	// no network time is attributed (testing).
	Link *netsim.Link
	// Flows is the number of concurrent flows sharing the link
	// (fan-out degree); values < 1 mean 1.
	Flows int
	// ForceCopyPath disables vmsplice/splice and moves the payload with
	// plain write/read syscalls — the ablation quantifying the
	// near-zero-copy win in isolation (DESIGN.md §5.1).
	ForceCopyPath bool
	// SerializeFirst re-enables the codec inside the guest before
	// transmission — the ablation quantifying the serialization-free win
	// (DESIGN.md §5.2).
	SerializeFirst bool
	// BatchSyscalls submits the per-chunk vmsplice/splice operations as
	// io_uring-style batches (one kernel entry per side), implementing the
	// syscall-batching extension of the paper's future work (§9).
	BatchSyscalls bool
	// NoChannelCache forces per-call channel establishment and teardown
	// (connection + hose pipes created and closed around every transfer —
	// the pre-cache behavior, kept as the cold-path ablation). By default
	// the channel is cached and reused across transfers of the same shim
	// pair, so warm transfers issue zero connect/pipe syscalls.
	NoChannelCache bool
	// PhaseLocked runs the transfer in the pre-pipeline regime — both VM
	// locks held for the whole operation, the source's send-all strictly
	// before the target's receive-all — kept as the ablation baseline for
	// the staged pipeline.
	PhaseLocked bool
	// SourceRef pins the source region (see UserOptions.SourceRef).
	SourceRef *OutputRef
	// Gates carries test instrumentation (see PipelineGates).
	Gates *PipelineGates
}

// NetworkTransfer implements Algorithm 1: the source shim maps the guest's
// output pages into a dedicated pipe (the virtual data hose) with vmsplice,
// splices them into a socket towards the target node, and the target shim
// splices them back out of its socket and writes them into the target
// function's linear memory. No user↔kernel payload copies occur on the wire
// path; the only copy is the final write into the target VM's memory —
// the paper's "near-zero copy" (§7).
//
// The two sides run as the staged pipeline of pipeline.go, mirroring the
// paper's real deployment where FunctionA's shim and FunctionB's shim are
// separate processes executing Algorithm 1 concurrently: the source VM is
// locked only while its pages enter the hose, the target VM only while the
// hose drains into linear memory, and the target drains chunk k while the
// source vmsplices chunk k+1.
//
// The control plane — connection handshake and hose pipes — is a cached
// channel (channels.go): only the first transfer between a shim pair pays
// it (reported as Breakdown.Setup), and warm transfers issue zero
// connect/pipe syscalls. Teardown moves from per-call close_all to channel
// eviction and shim Close; NoChannelCache restores the per-call behavior.
func NetworkTransfer(src, dst *Function, opts NetworkOptions) (InboundRef, metrics.TransferReport, error) {
	if src.shim == dst.shim {
		return InboundRef{}, metrics.TransferReport{}, ErrSameVM
	}
	if src.shim.Kernel() == dst.shim.Kernel() {
		return InboundRef{}, metrics.TransferReport{}, ErrSameNode
	}
	kind := chanNetwork
	chunkBytes := src.shim.hoseCap
	if opts.ForceCopyPath {
		kind = chanNetworkCopy // plain write/read needs no hose pipes
		// The copy-path ablation moves the payload as one write/read
		// exchange and gets no chunk pipelining.
		chunkBytes = 0
	}
	spec := pipelineSpec{
		mode:        "network",
		kind:        kind,
		perCall:     opts.NoChannelCache,
		phaseLocked: opts.PhaseLocked,
		ctx:         opts.Ctx,
		gates:       opts.Gates,
		src:         src,
		dst:         dst,
		link:        opts.Link,
		flows:       opts.Flows,
		chunkBytes:  chunkBytes,
		sourceRef:   opts.SourceRef,
		ops:         networkOps{},

		forceCopy:      opts.ForceCopyPath,
		serializeFirst: opts.SerializeFirst,
		batchSyscalls:  opts.BatchSyscalls,
	}
	return runPipeline(&spec)
}

// hoseChunks is the number of hose-sized chunks a payload crosses in.
func hoseChunks(out OutputRef, hoseCap int) int {
	if hoseCap <= 0 || out.Len == 0 {
		return 1
	}
	k := (int(out.Len) + hoseCap - 1) / hoseCap
	if k < 1 {
		k = 1
	}
	return k
}

// networkOps is the network-mode stage pair; like kernelOps it is a
// zero-size stateless type, with the mode's knobs (forceCopy,
// serializeFirst, batchSyscalls) read from the spec.
type networkOps struct{}

// egress is FunctionA's side of Algorithm 1 (lines 1-13): locate the
// output region, optionally serialize (ablation), take the zero-copy view,
// then vmsplice each chunk into the data hose and splice it onward into the
// socket. Runs under the source VM lock.
func (networkOps) egress(st *pipelineState) (OutputRef, error) {
	sp := &st.spec
	f := sp.src
	s := f.shim
	ch := st.ch

	// Algorithm 1 lines 1-4: locate the output region.
	swIO := metrics.NewStopwatch(s.now)
	out, err := f.sourceOutput(sp.sourceRef)
	if err != nil {
		return OutputRef{}, err
	}
	locT := swIO.Lap()
	s.acct.CPU(metrics.User, locT)
	st.em.wasmIO += locT

	// Optional ablation: re-enable in-guest serialization.
	if sp.serializeFirst {
		swSer := metrics.NewStopwatch(s.now)
		encOut, err := f.callPacked(guest.ExportSerialize, uint64(out.Ptr), uint64(out.Len))
		if err != nil {
			return OutputRef{}, fmt.Errorf("serialize ablation: %w", err)
		}
		st.em.serialization += swSer.Lap()
		out = encOut
	}

	// read_memory_host: zero-copy view of the source region.
	swIO2 := metrics.NewStopwatch(s.now)
	view, err := f.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return OutputRef{}, err
	}
	viewT := swIO2.Lap()
	s.acct.CPU(metrics.User, viewT)
	st.em.wasmIO += viewT
	st.announce(out)

	// network_data_transfer_source (Algorithm 1 lines 6-13).
	swT := metrics.NewStopwatch(s.now)
	if sp.forceCopy {
		if _, err := s.proc.Write(ch.cfd, view); err != nil {
			return OutputRef{}, fmt.Errorf("copy-path send: %w", err)
		}
	} else {
		if sp.batchSyscalls {
			s.proc.BeginBatch()
		}
		for off := 0; off < len(view); {
			if err := CtxErr(sp.ctx); err != nil {
				return OutputRef{}, err
			}
			chunk := len(view) - off
			if chunk > s.hoseCap {
				chunk = s.hoseCap
			}
			// vmsplice(vdh, address, length): gift the guest pages into
			// the hose without copying.
			if _, err := s.proc.Vmsplice(ch.wfd, view[off:off+chunk]); err != nil {
				return OutputRef{}, fmt.Errorf("vmsplice: %w", err)
			}
			// splice(vdh, socket, length): move page references to the
			// socket.
			for moved := 0; moved < chunk; {
				n, err := s.proc.Splice(ch.rfd, ch.cfd, chunk-moved)
				if err != nil {
					return OutputRef{}, fmt.Errorf("splice out: %w", err)
				}
				moved += n
			}
			off += chunk
		}
		if sp.batchSyscalls {
			s.proc.EndBatch()
		}
	}
	sendT := swT.Lap()
	s.acct.CPU(metrics.Kernel, sendT)
	st.em.transfer += sendT
	return out, nil
}

// ingress is FunctionB's side of Algorithm 1 (lines 15-29): allocate
// target memory, splice each chunk from the socket into the target hose and
// deposit its pages into linear memory — the single unavoidable copy of the
// near-zero-copy path — then optionally deserialize (ablation). Runs under
// the target VM lock.
func (networkOps) ingress(st *pipelineState, out OutputRef) (InboundRef, error) {
	sp := &st.spec
	f := sp.dst
	s := f.shim
	ch := st.ch

	swIO := metrics.NewStopwatch(s.now)
	dstPtr, err := f.view.Allocate(out.Len)
	if err != nil {
		return InboundRef{}, err
	}
	// Every failure past this point rewinds the allocation above via
	// ingressAbort: the drain holds the VM lock, so it is the top
	// allocation and the bump heap returns to its pre-transfer position.
	wv, err := f.view.WritableView(dstPtr, out.Len)
	if err != nil {
		return ingressAbort(f, dstPtr, err)
	}
	allocT := swIO.Lap()
	s.acct.CPU(metrics.User, allocT)
	st.im.wasmIO += allocT

	// network_data_transfer_target (Algorithm 1 lines 21-29).
	swR := metrics.NewStopwatch(s.now)
	if sp.forceCopy {
		for off := 0; off < len(wv); {
			if err := CtxErr(sp.ctx); err != nil {
				return ingressAbort(f, dstPtr, err)
			}
			n, err := s.proc.Read(ch.sfd, wv[off:])
			if err != nil {
				return ingressAbort(f, dstPtr, fmt.Errorf("copy-path recv: %w", err))
			}
			if n == 0 {
				return ingressAbort(f, dstPtr, fmt.Errorf("copy-path recv: zero-progress read: %w", kernel.ErrClosed))
			}
			off += n
		}
		recvT := swR.Lap()
		s.acct.CPU(metrics.Kernel, recvT)
		st.im.transfer += recvT
	} else {
		if sp.batchSyscalls {
			s.proc.BeginBatch()
		}
		received := 0
		for received < int(out.Len) {
			if err := CtxErr(sp.ctx); err != nil {
				return ingressAbort(f, dstPtr, err)
			}
			chunk := int(out.Len) - received
			if chunk > s.hoseCap {
				chunk = s.hoseCap
			}
			// splice(socket_fd, target_vdh, length).
			for moved := 0; moved < chunk; {
				n, err := s.proc.Splice(ch.sfd, ch.twfd, chunk-moved)
				if err != nil {
					return ingressAbort(f, dstPtr, fmt.Errorf("splice in: %w", err))
				}
				moved += n
			}
			kernelT := swR.Lap()
			s.acct.CPU(metrics.Kernel, kernelT)
			st.im.transfer += kernelT

			// write_memory_host: deposit the hose pages directly into
			// the target VM's linear memory — the single unavoidable
			// copy of the near-zero-copy path.
			swW := metrics.NewStopwatch(s.now)
			refs, err := s.proc.ReadRefs(ch.trfd, chunk)
			if err != nil {
				return ingressAbort(f, dstPtr, fmt.Errorf("drain hose: %w", err))
			}
			off := received
			for _, ref := range refs {
				off += copy(wv[off:], ref.Bytes())
			}
			pagebuf.ReleaseAll(refs)
			s.acct.Copy(metrics.User, off-received)
			received = off
			wIO := swW.Lap()
			s.acct.CPU(metrics.User, wIO)
			st.im.wasmIO += wIO
			swR = metrics.NewStopwatch(s.now)
		}
		if sp.batchSyscalls {
			s.proc.EndBatch()
		}
	}

	// Ablation follow-up: decode in the target guest.
	resultRef := InboundRef{Ptr: dstPtr, Len: out.Len}
	if sp.serializeFirst {
		swDe := metrics.NewStopwatch(s.now)
		decOut, err := f.callPacked(guest.ExportDeserialize, uint64(dstPtr), uint64(out.Len))
		if err != nil {
			return ingressAbort(f, dstPtr, fmt.Errorf("deserialize ablation: %w", err))
		}
		st.im.serialization += swDe.Lap()
		resultRef = InboundRef{Ptr: decOut.Ptr, Len: decOut.Len}
	}
	return resultRef, nil
}
