package core

import (
	"fmt"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/pagebuf"
)

// NetworkOptions tunes a network-mode transfer.
type NetworkOptions struct {
	// Link is the modeled network path between the two nodes; nil means
	// no network time is attributed (testing).
	Link *netsim.Link
	// Flows is the number of concurrent flows sharing the link
	// (fan-out degree); values < 1 mean 1.
	Flows int
	// ForceCopyPath disables vmsplice/splice and moves the payload with
	// plain write/read syscalls — the ablation quantifying the
	// near-zero-copy win in isolation (DESIGN.md §4.1).
	ForceCopyPath bool
	// SerializeFirst re-enables the codec inside the guest before
	// transmission — the ablation quantifying the serialization-free win
	// (DESIGN.md §4.2).
	SerializeFirst bool
	// BatchSyscalls submits the per-chunk vmsplice/splice operations as
	// io_uring-style batches (one kernel entry per side), implementing the
	// syscall-batching extension of the paper's future work (§9).
	BatchSyscalls bool
	// NoChannelCache forces per-call channel establishment and teardown
	// (connection + hose pipes created and closed around every transfer —
	// the pre-cache behavior, kept as the cold-path ablation). By default
	// the channel is cached and reused across transfers of the same shim
	// pair, so warm transfers issue zero connect/pipe syscalls.
	NoChannelCache bool
}

// NetworkTransfer implements Algorithm 1: the source shim maps the guest's
// output pages into a dedicated pipe (the virtual data hose) with vmsplice,
// splices them into a socket towards the target node, and the target shim
// splices them back out of its socket and writes them into the target
// function's linear memory. No user↔kernel payload copies occur on the wire
// path; the only copy is the final write into the target VM's memory —
// the paper's "near-zero copy" (§7).
//
// The control plane — connection handshake and hose pipes — is a cached
// channel (channels.go): only the first transfer between a shim pair pays
// it (reported as Breakdown.Setup), and warm transfers issue zero
// connect/pipe syscalls. Teardown moves from per-call close_all to channel
// eviction and shim Close; NoChannelCache restores the per-call behavior.
func NetworkTransfer(src, dst *Function, opts NetworkOptions) (InboundRef, metrics.TransferReport, error) {
	if src.shim == dst.shim {
		return InboundRef{}, metrics.TransferReport{}, ErrSameVM
	}
	if src.shim.Kernel() == dst.shim.Kernel() {
		return InboundRef{}, metrics.TransferReport{}, ErrSameNode
	}
	srcShim, dstShim := src.shim, dst.shim
	locked := lockShims(srcShim, dstShim)
	defer unlockShims(locked)
	beforeSrc := srcShim.acct.Snapshot()
	beforeDst := dstShim.acct.Snapshot()
	var breakdown metrics.Breakdown

	// FunctionA side (Algorithm 1 lines 1-4): locate the output region.
	swIO := metrics.NewStopwatch(srcShim.now)
	out, err := src.locateQuiet()
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	locT := swIO.Lap()
	srcShim.acct.CPU(metrics.User, locT)
	breakdown.WasmIO += locT

	// Optional ablation: re-enable in-guest serialization.
	if opts.SerializeFirst {
		swSer := metrics.NewStopwatch(srcShim.now)
		encOut, err := src.callPacked(guest.ExportSerialize, uint64(out.Ptr), uint64(out.Len))
		if err != nil {
			return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("serialize ablation: %w", err)
		}
		breakdown.Serialization += swSer.Lap()
		out = encOut
	}

	// read_memory_host: zero-copy view of the source region.
	swIO2 := metrics.NewStopwatch(srcShim.now)
	view, err := src.view.ReadView(out.Ptr, out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	viewT := swIO2.Lap()
	srcShim.acct.CPU(metrics.User, viewT)
	breakdown.WasmIO += viewT

	// Acquire the channel: connection + source/target hoses. Cold
	// acquisitions pay the control-plane syscalls once, reported as the
	// Setup component; warm ones reuse the cached descriptors.
	kind := chanNetwork
	if opts.ForceCopyPath {
		kind = chanNetworkCopy // plain write/read needs no hose pipes
	}
	ch, setup, finish, err := acquireTransferChannel(srcShim, dstShim, kind, opts.NoChannelCache)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("channel: %w", err)
	}
	breakdown.Setup = setup
	// On failure the (possibly payload-stranding) channel is destroyed, so
	// error returns leak neither FDs nor pool pages.
	healthy := false
	defer func() { finish(healthy) }()

	// network_data_transfer_source (Algorithm 1 lines 6-13).
	swT := metrics.NewStopwatch(srcShim.now)
	if opts.ForceCopyPath {
		if _, err := srcShim.proc.Write(ch.cfd, view); err != nil {
			return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("copy-path send: %w", err)
		}
	} else {
		if opts.BatchSyscalls {
			srcShim.proc.BeginBatch()
		}
		for off := 0; off < len(view); {
			chunk := len(view) - off
			if chunk > srcShim.hoseCap {
				chunk = srcShim.hoseCap
			}
			// vmsplice(vdh, address, length): gift the guest pages into
			// the hose without copying.
			if _, err := srcShim.proc.Vmsplice(ch.wfd, view[off:off+chunk]); err != nil {
				return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("vmsplice: %w", err)
			}
			// splice(vdh, socket, length): move page references to the
			// socket.
			for moved := 0; moved < chunk; {
				n, err := srcShim.proc.Splice(ch.rfd, ch.cfd, chunk-moved)
				if err != nil {
					return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("splice out: %w", err)
				}
				moved += n
			}
			off += chunk
		}
		if opts.BatchSyscalls {
			srcShim.proc.EndBatch()
		}
	}
	sendT := swT.Lap()
	srcShim.acct.CPU(metrics.Kernel, sendT)
	breakdown.Transfer += sendT

	// FunctionB side (Algorithm 1 lines 15-19): allocate target memory.
	swIO3 := metrics.NewStopwatch(dstShim.now)
	dstPtr, err := dst.view.Allocate(out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	wv, err := dst.view.WritableView(dstPtr, out.Len)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	allocT := swIO3.Lap()
	dstShim.acct.CPU(metrics.User, allocT)
	breakdown.WasmIO += allocT

	// network_data_transfer_target (Algorithm 1 lines 21-29).
	swR := metrics.NewStopwatch(dstShim.now)
	if opts.ForceCopyPath {
		for off := 0; off < len(wv); {
			n, err := dstShim.proc.Read(ch.sfd, wv[off:])
			if err != nil {
				return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("copy-path recv: %w", err)
			}
			if n == 0 {
				return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("copy-path recv: zero-progress read: %w", kernel.ErrClosed)
			}
			off += n
		}
		recvT := swR.Lap()
		dstShim.acct.CPU(metrics.Kernel, recvT)
		breakdown.Transfer += recvT
	} else {
		if opts.BatchSyscalls {
			dstShim.proc.BeginBatch()
		}
		received := 0
		for received < int(out.Len) {
			chunk := int(out.Len) - received
			if chunk > dstShim.hoseCap {
				chunk = dstShim.hoseCap
			}
			// splice(socket_fd, target_vdh, length).
			for moved := 0; moved < chunk; {
				n, err := dstShim.proc.Splice(ch.sfd, ch.twfd, chunk-moved)
				if err != nil {
					return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("splice in: %w", err)
				}
				moved += n
			}
			kernelT := swR.Lap()
			dstShim.acct.CPU(metrics.Kernel, kernelT)
			breakdown.Transfer += kernelT

			// write_memory_host: deposit the hose pages directly into
			// the target VM's linear memory — the single unavoidable
			// copy of the near-zero-copy path.
			swW := metrics.NewStopwatch(dstShim.now)
			refs, err := dstShim.proc.ReadRefs(ch.trfd, chunk)
			if err != nil {
				return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("drain hose: %w", err)
			}
			off := received
			for _, ref := range refs {
				off += copy(wv[off:], ref.Bytes())
			}
			pagebuf.ReleaseAll(refs)
			dstShim.acct.Copy(metrics.User, off-received)
			received = off
			wIO := swW.Lap()
			dstShim.acct.CPU(metrics.User, wIO)
			breakdown.WasmIO += wIO
			swR = metrics.NewStopwatch(dstShim.now)
		}
		if opts.BatchSyscalls {
			dstShim.proc.EndBatch()
		}
	}
	healthy = true

	// Ablation follow-up: decode in the target guest.
	resultRef := InboundRef{Ptr: dstPtr, Len: out.Len}
	if opts.SerializeFirst {
		swDe := metrics.NewStopwatch(dstShim.now)
		decOut, err := dst.callPacked(guest.ExportDeserialize, uint64(dstPtr), uint64(out.Len))
		if err != nil {
			return InboundRef{}, metrics.TransferReport{}, fmt.Errorf("deserialize ablation: %w", err)
		}
		breakdown.Serialization += swDe.Lap()
		resultRef = InboundRef{Ptr: decOut.Ptr, Len: decOut.Len}
	}

	usage := srcShim.acct.Snapshot().Sub(beforeSrc).Add(dstShim.acct.Snapshot().Sub(beforeDst))
	breakdown.Transfer += srcShim.Kernel().SyscallTime(usage.Syscalls)

	// Modeled wire time: the payload crossed the inter-node link once.
	if opts.Link != nil {
		breakdown.Network = opts.Link.TransferTime(int64(out.Len), opts.Flows)
	}

	report := metrics.TransferReport{
		Bytes:     int64(out.Len),
		Breakdown: breakdown,
		Usage:     usage,
		Mode:      "network",
	}
	return resultRef, report, nil
}
