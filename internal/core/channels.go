package core

import (
	"sync"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
)

// Channel-cache defaults (overridable per shim via ShimConfig).
const (
	// DefaultChannelIdle is how long an unused cached channel survives
	// before the next acquisition evicts it.
	DefaultChannelIdle = 30 * time.Second
	// DefaultChannelCap bounds the cached channels one shim originates;
	// beyond it the least recently used channel is evicted.
	DefaultChannelCap = 16
)

// chanKind distinguishes the two persistent-hose flavors.
type chanKind uint8

const (
	// chanKernel is the same-node socketpair IPC channel (§4.2).
	chanKernel chanKind = iota
	// chanNetwork is the cross-node channel: a TCP-like connection plus the
	// source and target virtual-data-hose pipes of Algorithm 1.
	chanNetwork
	// chanNetworkCopy is the connection-only variant the ForceCopyPath
	// ablation uses: plain write/read needs no hose pipes, and creating
	// them anyway would inflate the copy-path baseline's setup cost and
	// FD footprint.
	chanNetworkCopy
	// chanNetworkTarget is connection + target hose, without a source
	// hose: the ephemeral channels of a multicast's secondary targets,
	// which receive through their own hose but send through the shared
	// hose of the fan-out's first channel.
	chanNetworkTarget
)

// chanKey identifies one cached channel in its source shim's registry.
type chanKey struct {
	dst  *Shim
	kind chanKind
}

// channel is one persistent data hose between an ordered (source, target)
// shim pair. The control plane — connection handshake, hose pipe creation,
// socketpair — runs once at establishment; every subsequent transfer between
// the pair reuses the descriptors and pays only data-plane syscalls. A
// channel is used only under its pair lock (Shim.pairLock), which serializes
// every transfer of the ordered pair, so its descriptors never see two
// transfers' operations concurrently — the overlapped source and target
// stages of ONE transfer do touch opposite ends of the channel at the same
// time, which is exactly what a pipe or socket supports.
type channel struct {
	src, dst *Shim
	kind     chanKind

	// chanNetwork descriptors.
	cfd, sfd   int // connection: cfd in src's proc, sfd in dst's proc
	rfd, wfd   int // source hose pipe (src's proc)
	trfd, twfd int // target hose pipe (dst's proc)

	// chanKernel descriptors: the socketpair ends.
	fdA, fdB int

	// lastUsed drives idle eviction; guarded by src.chanMu.
	lastUsed time.Time
	// cached marks registry membership; per-call (ephemeral) channels are
	// never registered and are destroyed by their transfer.
	cached bool
	// pins counts in-flight operations (transfers, multicast acquisitions)
	// currently holding the channel; a pinned channel is excluded from
	// idle/LRU eviction. Stage-scoped transfers hold channels without any
	// VM lock, so pinning is what keeps a concurrent transfer of another
	// pair from evicting a hose that is mid-payload. Guarded by src.chanMu.
	pins int
}

// pin marks the channel as held by one more in-flight operation, shielding
// it from eviction until the matching unpin. No-op for ephemeral channels.
func (c *channel) pin() {
	if !c.cached {
		return
	}
	c.src.chanMu.Lock()
	c.pins++
	c.src.chanMu.Unlock()
}

// unpin releases one pin.
func (c *channel) unpin() {
	if !c.cached {
		return
	}
	c.src.chanMu.Lock()
	c.pins--
	c.src.chanMu.Unlock()
}

// establishChannel issues the control-plane syscalls for a fresh channel.
// Callers hold both shims' VM locks and have validated placement (same
// kernel for chanKernel, different kernels for chanNetwork).
func establishChannel(src, dst *Shim, kind chanKind) (*channel, error) {
	c := &channel{src: src, dst: dst, kind: kind}
	switch kind {
	case chanKernel:
		fdA, fdB, err := kernel.SocketPair(src.proc, dst.proc)
		if err != nil {
			return nil, err
		}
		c.fdA, c.fdB = fdA, fdB
	case chanNetwork:
		c.cfd, c.sfd = kernel.Connect(src.proc, dst.proc)
		c.rfd, c.wfd = src.proc.PipeSized(src.hoseCap)
		c.trfd, c.twfd = dst.proc.PipeSized(dst.hoseCap)
	case chanNetworkCopy:
		c.cfd, c.sfd = kernel.Connect(src.proc, dst.proc)
	case chanNetworkTarget:
		c.cfd, c.sfd = kernel.Connect(src.proc, dst.proc)
		c.trfd, c.twfd = dst.proc.PipeSized(dst.hoseCap)
	}
	return c, nil
}

// destroy tears the channel down: it is removed from both shims' registries
// and every descriptor on both sides is closed (draining any stranded
// payload back to the page pool). Called on idle/LRU eviction, on shim
// Close, after every per-call (uncached) transfer, and on transfer errors —
// a failed transfer may leave bytes queued in the hose, so the channel is
// poisoned and must not be reused. Destroy is idempotent: descriptors never
// recycle in the simulated kernel, so a second close is a harmless EBADF.
func (c *channel) destroy() {
	if c.cached {
		c.src.chanMu.Lock()
		if c.src.channels[chanKey{c.dst, c.kind}] == c {
			delete(c.src.channels, chanKey{c.dst, c.kind})
		}
		c.src.chanMu.Unlock()
		c.dst.chanMu.Lock()
		delete(c.dst.inbound, c)
		c.dst.chanMu.Unlock()
	}
	c.closeFDs()
}

// closeFDs closes every descriptor on both sides of the channel, draining
// any stranded payload back to the page pool. Closing an already-closed
// descriptor is a harmless EBADF (descriptors never recycle).
func (c *channel) closeFDs() {
	switch c.kind {
	case chanKernel:
		_ = c.src.proc.Close(c.fdA)
		_ = c.dst.proc.Close(c.fdB)
	case chanNetwork:
		_ = c.src.proc.Close(c.rfd)
		_ = c.src.proc.Close(c.wfd)
		_ = c.src.proc.Close(c.cfd)
		_ = c.dst.proc.Close(c.trfd)
		_ = c.dst.proc.Close(c.twfd)
		_ = c.dst.proc.Close(c.sfd)
	case chanNetworkCopy:
		_ = c.src.proc.Close(c.cfd)
		_ = c.dst.proc.Close(c.sfd)
	case chanNetworkTarget:
		_ = c.src.proc.Close(c.cfd)
		_ = c.dst.proc.Close(c.trfd)
		_ = c.dst.proc.Close(c.twfd)
		_ = c.dst.proc.Close(c.sfd)
	}
}

// acquireChannel returns the persistent src→dst channel of the given kind,
// establishing it on first use, and reports whether it was a cache hit. The
// returned channel is pinned; the caller must unpin it when its operation
// completes. Idle channels of the source shim are evicted on the way, and
// the registry is bounded by LRU eviction. Callers hold the pair lock
// (Shim.pairLock), which serializes acquisition and all data-plane use of
// the returned channel; chanMu only protects the registries against Close
// and against evictions by transfers of other pairs, and is never held
// while taking another lock.
func (s *Shim) acquireChannel(dst *Shim, kind chanKind) (*channel, bool, error) {
	now := s.now()
	key := chanKey{dst, kind}

	s.chanMu.Lock()
	c, ok := s.channels[key]
	var evicted []*channel
	// A stale channel of the requested pair is evicted too: the acquisition
	// misses and re-establishes, honoring the ChannelIdle contract even for
	// pairs that are only ever used sparsely.
	if ok && c.pins == 0 && now.Sub(c.lastUsed) > s.chanIdle {
		delete(s.channels, key)
		evicted = append(evicted, c)
		s.chanEvictions++
		c, ok = nil, false
	}
	for k, v := range s.channels {
		if v != c && v.pins == 0 && now.Sub(v.lastUsed) > s.chanIdle {
			delete(s.channels, k)
			evicted = append(evicted, v)
			s.chanEvictions++
		}
	}
	if ok {
		c.lastUsed = now
		c.pins++ // pinned under the same chanMu hold that found it
		s.chanHits++
	} else {
		s.chanMisses++
	}
	s.chanMu.Unlock()
	for _, v := range evicted {
		v.destroy()
	}
	if ok {
		return c, true, nil
	}

	// Miss: establish under the pair lock we already hold. No other
	// transfer of this pair can race the insert (it would need the same
	// pair lock).
	c, err := establishChannel(s, dst, kind)
	if err != nil {
		return nil, false, err
	}
	c.cached = true
	c.lastUsed = now
	c.pins = 1

	// Trim back to ChannelCap, oldest first, skipping the new channel and
	// any channel pinned by an in-flight operation (a multicast wider than
	// the cap may briefly hold more until its pins release; the next
	// acquisition trims the excess).
	var lrus []*channel
	s.chanMu.Lock()
	if s.channels == nil {
		s.channels = make(map[chanKey]*channel)
	}
	s.channels[key] = c
	for len(s.channels) > s.chanCap {
		var lru *channel
		var lruKey chanKey
		for k, v := range s.channels {
			if v != c && v.pins == 0 && (lru == nil || v.lastUsed.Before(lru.lastUsed)) {
				lru, lruKey = v, k
			}
		}
		if lru == nil {
			break // everything else is pinned or new
		}
		delete(s.channels, lruKey)
		s.chanEvictions++
		lrus = append(lrus, lru)
	}
	s.chanMu.Unlock()

	dst.chanMu.Lock()
	if dst.inbound == nil {
		dst.inbound = make(map[*channel]struct{})
	}
	dst.inbound[c] = struct{}{}
	dst.chanMu.Unlock()

	for _, lru := range lrus {
		lru.destroy()
	}
	return c, false, nil
}

// acquireTransferChannel is the shared entry of the unicast transfer paths:
// it acquires (or, perCall, freshly establishes) the channel, measures the
// cold establishment time and charges it to src as kernel CPU. The caller
// must pair it with releaseTransferChannel on every exit path, passing the
// transfer's outcome. Cached channels come back pinned; release unpins
// them. (An explicit release call, not a returned closure: allocating a
// capture per transfer would put a heap object on the zero-alloc hot path.)
func acquireTransferChannel(src, dst *Shim, kind chanKind, perCall bool) (*channel, time.Duration, error) {
	sw := metrics.NewStopwatch(src.now)
	var (
		c   *channel
		hit bool
		err error
	)
	if perCall {
		c, err = establishChannel(src, dst, kind)
	} else {
		c, hit, err = src.acquireChannel(dst, kind)
	}
	if err != nil {
		return nil, 0, err
	}
	var setup time.Duration
	if !hit {
		setup = sw.Lap()
		src.acct.CPU(metrics.Kernel, setup)
	}
	return c, setup, nil
}

// releaseTransferChannel ends a transfer's use of its channel: failed
// transfers poison the channel (payload may be stranded in it), and
// per-call channels always tear down, matching Algorithm 1's close_all.
func releaseTransferChannel(c *channel, perCall, healthy bool) {
	c.unpin()
	if perCall || !healthy {
		c.destroy()
	}
}

// pairLock returns the mutex serializing every transfer of the ordered
// (s → dst, kind) pair. It is the outermost lock of the staged data plane
// (see pipeline.go): a transfer holds its pair lock for its whole duration
// and takes VM locks one at a time underneath it, so same-pair transfers
// serialize (they share one cached channel) while transfers of different
// pairs — including pairs sharing a VM — interleave stage by stage.
// Entries are created on demand and live for the shim's lifetime; the map
// is guarded by chanMu, which is released before the returned mutex is
// ever taken.
func (s *Shim) pairLock(dst *Shim, kind chanKind) *sync.Mutex {
	key := chanKey{dst, kind}
	s.chanMu.Lock()
	defer s.chanMu.Unlock()
	if s.pairMu == nil {
		s.pairMu = make(map[chanKey]*sync.Mutex)
	}
	m := s.pairMu[key]
	if m == nil {
		m = new(sync.Mutex)
		s.pairMu[key] = m
	}
	return m
}

// PoisonChannels force-closes the descriptors of every cached channel the
// shim originates while leaving the stale entries registered — simulating a
// peer reset the cache cannot see. The next transfer acquiring a poisoned
// channel gets a cache hit, fails its first data-plane call with EBADF, and
// the failure path destroys the channel (idempotently — descriptors never
// recycle) so a later transfer of the pair re-establishes a fresh hose.
// Returns the number of channels poisoned. It is the channel-level fault of
// the chaos taxonomy; node- and shim-level faults are injected at the
// kernel layer.
func (s *Shim) PoisonChannels() int {
	s.chanMu.Lock()
	stale := make([]*channel, 0, len(s.channels))
	for _, c := range s.channels {
		stale = append(stale, c)
	}
	s.chanMu.Unlock()
	for _, c := range stale {
		c.closeFDs()
	}
	return len(stale)
}

// PruneChannels destroys every currently unpinned cached channel the shim
// originates, draining stranded pages and closing descriptors. Chaos tests
// use it to quiesce a deployment back to a channel-free steady state before
// comparing conservation baselines, since randomized rerouting establishes
// hoses for pairs the baseline snapshot never saw.
func (s *Shim) PruneChannels() int {
	s.chanMu.Lock()
	victims := make([]*channel, 0, len(s.channels))
	for k, c := range s.channels {
		if c.pins == 0 {
			delete(s.channels, k)
			victims = append(victims, c)
			s.chanEvictions++
		}
	}
	s.chanMu.Unlock()
	for _, c := range victims {
		c.destroy()
	}
	return len(victims)
}

// closeChannels destroys every channel the shim participates in, as source
// or target. Part of Shim.Close; like the rest of teardown it must not run
// concurrently with transfers involving this shim.
func (s *Shim) closeChannels() {
	s.chanMu.Lock()
	all := make([]*channel, 0, len(s.channels)+len(s.inbound))
	for _, c := range s.channels {
		all = append(all, c)
	}
	for c := range s.inbound {
		all = append(all, c)
	}
	s.channels, s.inbound = nil, nil
	s.chanMu.Unlock()
	for _, c := range all {
		c.destroy()
	}
}

// ChannelStats counts persistent-hose cache activity for one shim (or,
// aggregated, for a whole deployment): Hits and Misses split warm from cold
// transfers, Evictions counts idle/LRU teardowns, and Active is the number
// of channels currently cached with this shim as the source.
type ChannelStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Active    int
}

// Add returns the component-wise sum (Active included: shims cache disjoint
// channel sets, so deployment-wide Active is the plain sum).
func (st ChannelStats) Add(o ChannelStats) ChannelStats {
	return ChannelStats{
		Hits:      st.Hits + o.Hits,
		Misses:    st.Misses + o.Misses,
		Evictions: st.Evictions + o.Evictions,
		Active:    st.Active + o.Active,
	}
}

// ChannelStats reports the shim's channel-cache counters.
func (s *Shim) ChannelStats() ChannelStats {
	s.chanMu.Lock()
	defer s.chanMu.Unlock()
	return ChannelStats{
		Hits:      s.chanHits,
		Misses:    s.chanMisses,
		Evictions: s.chanEvictions,
		Active:    len(s.channels),
	}
}
