// The staged data-plane pipeline. Every cross-sandbox transfer (kernel,
// network, multicast) is the same skeleton — resolve the source region,
// acquire the pair's channel, push pages in (egress), drain pages out into
// the target's linear memory (ingress), assemble usage and breakdown — and
// this file owns that skeleton. The per-mode files (transfer.go, network.go)
// contribute only the two stage bodies, as stateless stageOps
// implementations; multicast.go orchestrates its fan-out itself.
//
// Concurrency model (DESIGN.md §3): the pre-pipeline engine held BOTH VM
// locks for a transfer's whole duration, so a chain's interior VMs sat
// locked-idle while the other endpoint worked. The pipeline instead scopes
// each VM lock to its stage:
//
//   - the source VM lock is held only while the source's pages enter the
//     channel (locate/view/vmsplice-or-write). The payload stays valid past
//     unlock because the channel holds page references — pool pages own
//     their bytes, and gifted (vmspliced) pages alias a region of linear
//     memory that nothing rewrites while the transfer is in flight;
//   - the target VM lock is held only while the channel drains into the
//     target's linear memory (allocate/splice/copy);
//   - the two stages run on separate goroutines, so the target drains chunk
//     k while the source vmsplices chunk k+1. Breakdown.Overlap records the
//     window both stages ran concurrently, making the reported latency the
//     pipeline's critical path rather than the sum of sequential laps.
//
// Serialization that must remain is provided by the pair lock
// (Shim.pairLock): transfers of one ordered (source shim, target shim)
// pair share one cached channel and therefore execute one at a time.
// Transfers of different pairs — including pairs that share a VM —
// interleave stage by stage, which is what frees a chain's interior VMs
// between their stages. lockShims (ordered whole-transfer locking) remains
// the discipline wherever two VM locks must still nest: the phase-locked
// ablation regime below.
//
// Memory model (DESIGN.md §10): the steady-state transfer path allocates
// nothing. Per-transfer state — the announce/result channels, both stages'
// metrics, the spec itself — lives in a pooled pipelineState recycled
// through a sync.Pool, and the ingress stage runs on a parked stage worker
// fed through an unbuffered queue rather than a freshly spawned goroutine
// (a `go` statement with arguments allocates its closure). The recycled
// channels are never closed: an aborting egress sends an explicit sentinel
// message instead, so the same channel instance can carry the next
// transfer's announcement.
package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/netsim"
)

// errEgressAborted is the ingress stage's result when the source stage
// failed before announcing the payload size; the egress error is the one
// reported.
var errEgressAborted = errors.New("core: source stage aborted before announcing output")

// CtxErr reports a context's cancellation non-blockingly, treating a nil
// context as never cancelled. The data plane polls it at its cancellation
// points: pipeline entry, stage entry, and every chunk boundary of a stage
// loop — a cancelled transfer aborts through the ordinary error path, which
// poisons (destroys) the pair's channel, drains any stranded pages back to
// the pool and closes the channel's descriptors, so cancellation conserves
// the same FD and page baselines every other transfer failure does.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// PipelineGates carries test instrumentation for the staged pipeline. All
// fields are optional; production callers leave the struct nil.
type PipelineGates struct {
	// BeforeIngress runs in the target-stage goroutine after the source
	// has announced its output region and before the target VM lock is
	// taken. Blocking here holds the transfer in its "wire in flight"
	// state — payload queued in the channel, neither VM lock held — which
	// is how tests prove an interior VM stays free mid-transfer.
	BeforeIngress func()
}

// stageMetrics accumulates one stage's breakdown contributions.
type stageMetrics struct {
	wasmIO        time.Duration
	transfer      time.Duration
	serialization time.Duration
}

// activity is the stage's total measured work.
func (m stageMetrics) activity() time.Duration {
	return m.wasmIO + m.transfer + m.serialization
}

// modeledOverlap is the critical-path credit of a k-chunk staged transfer.
// The stages form a chunk pipeline — egress CPU → wire → ingress CPU, each
// chunk's ingress dependent on its own egress only — so with per-chunk
// stage costs e, w, i the critical path is e + w + i + (k-1)·max(e,w,i),
// against a sequential sum of k·(e+w+i); the difference, restated over the
// measured stage totals E/W/I, is (k-1)/k · (E+W+I − max(E,W,I)).
//
// The overlap is modeled, not wall-measured, for the same reason wire time
// and syscall mode-switches are modeled (DESIGN.md §1): in the paper's
// testbed the two shims are separate processes on separate cores genuinely
// executing Algorithm 1 concurrently, which a single-process simulation —
// possibly pinned to one core — cannot physically reproduce. The stages DO
// run on separate goroutines (the locking and streaming are real); the
// model attributes the wall-clock those goroutines would save with real
// parallelism. One chunk means no pipelining, hence zero overlap.
func modeledOverlap(k int, e, w, i time.Duration) time.Duration {
	if k <= 1 {
		return 0
	}
	longest := max(e, max(w, i))
	return (e + w + i - longest) * time.Duration(k-1) / time.Duration(k)
}

// stageOps is one transfer mode's pair of stage bodies. Implementations are
// stateless zero-size types (kernelOps, networkOps): everything a stage
// needs rides in the pipelineState, so storing an implementation in a spec
// allocates nothing.
type stageOps interface {
	// egress runs under the source VM lock: resolve the output region,
	// announce it via st.announce (unblocking the target stage), push the
	// payload into st.ch. It must call st.announce exactly once, before
	// the first byte moves.
	egress(st *pipelineState) (OutputRef, error)
	// ingress runs under the target VM lock: drain st.ch into the
	// target's linear memory and return the delivered region.
	ingress(st *pipelineState, out OutputRef) (InboundRef, error)
}

// pipelineSpec describes one staged cross-sandbox transfer. The engine owns
// locking, channel lifecycle, stage scheduling and report assembly; ops
// carries the mode-specific stage bodies, and the remaining fields are the
// union of the modes' knobs (a plain value struct keeps the spec free of
// per-call closures).
type pipelineSpec struct {
	mode        string // report mode tag
	kind        chanKind
	perCall     bool            // NoChannelCache: ephemeral channel, per-call teardown
	phaseLocked bool            // ablation: both VM locks for the whole transfer
	ctx         context.Context // cancellation; nil means never cancelled
	gates       *PipelineGates
	src, dst    *Function
	link        *netsim.Link // modeled wire; nil = no network time
	flows       int
	// chunkBytes is the channel chunk size the payload crosses in — the
	// pipeline depth for overlap attribution is ceil(len/chunkBytes).
	// Zero means 1 chunk (no pipelining within the transfer, e.g. the
	// kernel path's single write/read exchange).
	chunkBytes int
	sourceRef  *OutputRef // pinned source region (see UserOptions.SourceRef)
	ops        stageOps

	// Network-mode knobs (see NetworkOptions).
	forceCopy      bool
	serializeFirst bool
	batchSyscalls  bool
}

// chunks is the transfer's pipeline depth for a payload of out.Len bytes.
func (sp *pipelineSpec) chunks(out OutputRef) int {
	if sp.chunkBytes <= 0 {
		return 1
	}
	return hoseChunks(out, sp.chunkBytes)
}

// announceMsg carries the egress announcement to the ingress stage. The
// aborted sentinel replaces closing the channel — the channels are pooled
// and reused, and a closed channel could never be.
type announceMsg struct {
	out     OutputRef
	aborted bool
}

// ingressResult is the ingress stage's outcome.
type ingressResult struct {
	ref InboundRef
	m   stageMetrics
	err error
}

// pipelineState is the per-transfer scratch: the spec, the acquired
// channel, both stages' metrics and the two rendezvous channels. States are
// recycled through statePool, so a warm transfer allocates none of it; the
// channels are never closed (see announceMsg) and carry exactly one message
// each per transfer, which is what makes recycling safe — after the caller
// receives the ingress result both channels are empty and no goroutine
// retains the state.
type pipelineState struct {
	spec       pipelineSpec
	ch         *channel
	em, im     stageMetrics
	out        OutputRef
	announced  bool
	announceCh chan announceMsg
	ingressCh  chan ingressResult
}

var statePool = sync.Pool{New: func() any {
	return &pipelineState{
		announceCh: make(chan announceMsg, 1),
		ingressCh:  make(chan ingressResult, 1),
	}
}}

// putPipelineState clears the state's references (so a pooled state pins no
// platform graph) and recycles it.
func putPipelineState(st *pipelineState) {
	st.spec = pipelineSpec{}
	st.ch = nil
	st.em, st.im = stageMetrics{}, stageMetrics{}
	st.out = OutputRef{}
	st.announced = false
	statePool.Put(st)
}

// announce records the source's output region and, in the pipelined regime,
// unblocks the ingress stage. Stage bodies call it exactly once, before the
// first payload byte moves.
func (st *pipelineState) announce(o OutputRef) {
	st.out = o
	st.announced = true
	if !st.spec.phaseLocked {
		st.announceCh <- announceMsg{out: o}
	}
}

// ingressQ hands states to parked stage workers. It is unbuffered on
// purpose: a send succeeds only when a worker is already parked on the
// other side, and dispatchIngress grows the worker set otherwise.
var ingressQ = make(chan *pipelineState)

// dispatchIngress schedules st's ingress stage: on a parked stage worker
// when one is available (the warm path — no goroutine spawn, no
// allocation), else on a new worker that parks afterwards. Workers live for
// the process and their population is bounded by the peak number of
// concurrent transfers.
func dispatchIngress(st *pipelineState) {
	select {
	case ingressQ <- st:
	default:
		go ingressWorker(st)
	}
}

func ingressWorker(st *pipelineState) {
	for {
		st.runIngress()
		// The state was handed back through st.ingressCh; it must not be
		// touched again — park for the next transfer's state.
		st = <-ingressQ
	}
}

// runIngress is the target stage: wait for the announced output, then drain
// under the target VM lock alone. It sends exactly one result on
// st.ingressCh and touches st never again afterwards.
func (st *pipelineState) runIngress() {
	msg := <-st.announceCh
	if msg.aborted {
		st.ingressCh <- ingressResult{err: errEgressAborted}
		return
	}
	sp := &st.spec
	if sp.gates != nil && sp.gates.BeforeIngress != nil {
		sp.gates.BeforeIngress()
	}
	// Stage-boundary cancellation point: the payload is on the wire
	// (queued in the channel), neither VM lock held. The destroy both
	// releases the queued pages back to the pool and unblocks an egress
	// still pushing into a full ring (its write fails with ring-closed,
	// which the error join in runPipeline overrides with the
	// cancellation).
	if err := CtxErr(sp.ctx); err != nil {
		st.ch.destroy()
		st.ingressCh <- ingressResult{err: err}
		return
	}
	dstShim := sp.dst.shim
	dstShim.mu.Lock()
	ref, err := sp.ops.ingress(st, msg.out)
	dstShim.mu.Unlock()
	st.ingressCh <- ingressResult{ref: ref, m: st.im, err: err}
}

// sourceOutput resolves the region a transfer's source stage reads: the
// guest's current output (locate_memory_region), or — when the caller pins
// an explicit region, as streaming chains do — set_output followed by
// locate, atomically under the VM lock the caller holds. The atomicity is
// what keeps concurrent chains over shared interior functions linearizable:
// no other transfer can retarget the function's output between the two
// calls. CPU is charged by the surrounding stage stopwatch.
func (f *Function) sourceOutput(pinned *OutputRef) (OutputRef, error) {
	if pinned != nil {
		if _, err := f.inst.Call(guest.ExportSetOutput, uint64(pinned.Ptr), uint64(pinned.Len)); err != nil {
			return OutputRef{}, err
		}
	}
	return f.locateQuiet()
}

// runPipeline executes a staged transfer. Stage scheduling:
//
//	caller goroutine:  pair lock → channel → [src lock: egress] → join
//	stage worker:              wait announce → [dst lock: ingress]
//
// The pair lock is the only lock held across stages; VM locks never nest.
func runPipeline(spec *pipelineSpec) (InboundRef, metrics.TransferReport, error) {
	if spec.phaseLocked {
		return runPhaseLocked(spec)
	}
	srcShim, dstShim := spec.src.shim, spec.dst.shim
	pl := srcShim.pairLock(dstShim, spec.kind)
	pl.Lock()
	defer pl.Unlock()
	// First cancellation point: a transfer cancelled while waiting on the
	// pair lock aborts before acquiring a channel or touching either VM.
	if err := CtxErr(spec.ctx); err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	beforeSrc := srcShim.acct.Snapshot()
	beforeDst := dstShim.acct.Snapshot()

	ch, setup, err := acquireTransferChannel(srcShim, dstShim, spec.kind, spec.perCall)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}

	st := statePool.Get().(*pipelineState)
	st.spec = *spec
	st.ch = ch
	dispatchIngress(st)

	// Source stage, inline, under the source VM lock alone.
	srcShim.mu.Lock()
	_, eerr := spec.ops.egress(st)
	srcShim.mu.Unlock()
	if eerr != nil {
		if !st.announced {
			st.announceCh <- announceMsg{aborted: true}
		} else {
			// The target stage may be blocked draining a channel that will
			// never fill; poisoning the channel unblocks it. The release
			// below destroys it again — destroy is idempotent.
			ch.destroy()
		}
		ires := <-st.ingressCh
		putPipelineState(st)
		releaseTransferChannel(ch, spec.perCall, false)
		// A cancelled ingress poisons the channel to unblock the egress,
		// whose push then fails with ring-closed: when the discarded
		// ingress result carries the cancellation, that is the cause and
		// the error reported. A genuine egress fault that merely coincides
		// with an expiring context keeps its own error.
		if cerr := CtxErr(spec.ctx); cerr != nil && errors.Is(ires.err, cerr) {
			eerr = cerr
		}
		return InboundRef{}, metrics.TransferReport{}, eerr
	}
	ires := <-st.ingressCh
	out, em := st.out, st.em
	putPipelineState(st)
	if ires.err != nil {
		releaseTransferChannel(ch, spec.perCall, false)
		return InboundRef{}, metrics.TransferReport{}, ires.err
	}
	releaseTransferChannel(ch, spec.perCall, true)

	usage := srcShim.acct.Snapshot().Sub(beforeSrc).Add(dstShim.acct.Snapshot().Sub(beforeDst))
	report := assembleReport(spec, out, setup, em, ires.m, usage)
	return ires.ref, report, nil
}

// runPhaseLocked is the pre-pipeline regime, kept as the ablation baseline:
// both VM locks held for the whole transfer (ordered by lockShims), stages
// strictly sequential, zero overlap. It issues the identical syscall and
// copy sequence — pipelining moves when work happens, never how much.
func runPhaseLocked(spec *pipelineSpec) (InboundRef, metrics.TransferReport, error) {
	srcShim, dstShim := spec.src.shim, spec.dst.shim
	// The pair lock still serializes against pipelined transfers of the
	// same pair, which share the cached channel.
	pl := srcShim.pairLock(dstShim, spec.kind)
	pl.Lock()
	defer pl.Unlock()
	if err := CtxErr(spec.ctx); err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}
	locked := lockShims(srcShim, dstShim)
	defer unlockShims(locked)
	beforeSrc := srcShim.acct.Snapshot()
	beforeDst := dstShim.acct.Snapshot()

	ch, setup, err := acquireTransferChannel(srcShim, dstShim, spec.kind, spec.perCall)
	if err != nil {
		return InboundRef{}, metrics.TransferReport{}, err
	}

	// The state carries the spec and channel to the stage bodies exactly
	// as in the pipelined regime; phaseLocked makes announce record-only,
	// and both stages run inline on this goroutine.
	st := statePool.Get().(*pipelineState)
	st.spec = *spec
	st.ch = ch

	out, err := spec.ops.egress(st)
	if err == nil {
		// Stage boundary: the phases run strictly sequentially here, so
		// this is the one cancellation point between send-all and
		// receive-all.
		err = CtxErr(spec.ctx)
	}
	if err != nil {
		putPipelineState(st)
		releaseTransferChannel(ch, spec.perCall, false)
		return InboundRef{}, metrics.TransferReport{}, err
	}
	ref, err := spec.ops.ingress(st, out)
	em, im := st.em, st.im
	putPipelineState(st)
	if err != nil {
		releaseTransferChannel(ch, spec.perCall, false)
		return InboundRef{}, metrics.TransferReport{}, err
	}
	releaseTransferChannel(ch, spec.perCall, true)

	usage := srcShim.acct.Snapshot().Sub(beforeSrc).Add(dstShim.acct.Snapshot().Sub(beforeDst))
	report := assembleReport(spec, out, setup, em, im, usage)
	return ref, report, nil
}

// assembleReport folds both stages' measurements into the transfer report.
// Modeled syscall mode-switch time joins the Transfer component as before;
// Overlap is the modeled critical-path credit of the chunk pipeline (zero
// in the phase-locked regime, whose phases are strictly sequential by
// definition).
func assembleReport(spec *pipelineSpec, out OutputRef, setup time.Duration, em, im stageMetrics, usage metrics.Usage) metrics.TransferReport {
	srcShim := spec.src.shim
	bd := metrics.Breakdown{
		Setup:         setup,
		Transfer:      em.transfer + im.transfer + srcShim.Kernel().SyscallTime(usage.Syscalls),
		Serialization: em.serialization + im.serialization,
		WasmIO:        em.wasmIO + im.wasmIO,
	}
	if spec.link != nil {
		bd.Network = spec.link.TransferTime(int64(out.Len), spec.flows)
	}
	if !spec.phaseLocked {
		bd.Overlap = modeledOverlap(spec.chunks(out), em.activity(), bd.Network, im.activity())
	}
	return metrics.TransferReport{
		Bytes:     int64(out.Len),
		Breakdown: bd,
		Usage:     usage,
		Mode:      spec.mode,
	}
}
