package core_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/core"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
)

func TestStateStorePutGetRoundTrip(t *testing.T) {
	k := kernel.New("n")
	s := newShim(t, "s", k)
	f := addFn(t, s, "f")
	store := core.NewStateStore()

	const n = 100_000
	if _, err := f.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(f, "frame"); err != nil {
		t.Fatal(err)
	}
	// New invocation: the guest heap is rewound (transient state is gone).
	out, _ := f.Output()
	if err := f.Deallocate(out.Ptr); err != nil {
		t.Fatal(err)
	}

	ref, err := store.Get(f, "frame")
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, f, ref, n)
	if store.Size() != n {
		t.Fatalf("store size = %d", store.Size())
	}
}

func TestStateStoreWorkflowIsolation(t *testing.T) {
	k := kernel.New("n")
	store := core.NewStateStore()

	mkFn := func(name string, wf core.Workflow) *core.Function {
		s, err := core.NewShim(core.ShimConfig{Name: name, Workflow: wf, Kernel: k, Module: guest.Module()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return addFn(t, s, name)
	}
	wfA := core.Workflow{Name: "wf-a", Tenant: "t1"}
	wfB := core.Workflow{Name: "wf-b", Tenant: "t1"}
	wfA2 := core.Workflow{Name: "wf-a", Tenant: "t2"} // same name, other tenant

	fa := mkFn("a", wfA)
	fb := mkFn("b", wfB)
	fa2 := mkFn("a2", wfA2)

	if _, err := fa.CallPacked(guest.ExportProduce, 1000); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(fa, "secret"); err != nil {
		t.Fatal(err)
	}

	// Another workflow cannot see the entry.
	if _, err := store.Get(fb, "secret"); !errors.Is(err, core.ErrNoState) {
		t.Fatalf("cross-workflow get = %v", err)
	}
	// Same workflow name but another tenant cannot either.
	if _, err := store.Get(fa2, "secret"); !errors.Is(err, core.ErrNoState) {
		t.Fatalf("cross-tenant get = %v", err)
	}
	// The owner can.
	if _, err := store.Get(fa, "secret"); err != nil {
		t.Fatalf("owner get = %v", err)
	}
	if keys := store.Keys(wfA); len(keys) != 1 || keys[0] != "secret" {
		t.Fatalf("keys(wfA) = %v", keys)
	}
	if keys := store.Keys(wfB); len(keys) != 0 {
		t.Fatalf("keys(wfB) = %v", keys)
	}
}

func TestStateStoreOverwriteAndDelete(t *testing.T) {
	k := kernel.New("n")
	s := newShim(t, "s", k)
	f := addFn(t, s, "f")
	store := core.NewStateStore()

	if _, err := f.CallPacked(guest.ExportProduce, 500); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(f, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CallPacked(guest.ExportProduce, 200); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(f, "x"); err != nil {
		t.Fatal(err)
	}
	if store.Size() != 200 {
		t.Fatalf("size after overwrite = %d", store.Size())
	}
	store.Delete(s.Workflow(), "x")
	if _, err := store.Get(f, "x"); !errors.Is(err, core.ErrNoState) {
		t.Fatalf("get after delete = %v", err)
	}
	store.Delete(s.Workflow(), "x") // idempotent
}

// TestStateStoreDeleteCreditsOwningAccount: residency charged by Put must
// be credited back — to the account that paid it — on Delete and on
// overwrite by another instance, so FD tables, the kernel page pool and the
// sandbox accounts all return to baseline once a workflow's state is gone.
func TestStateStoreDeleteCreditsOwningAccount(t *testing.T) {
	k := kernel.New("n")
	sa := newShim(t, "sa", k)
	sb := newShim(t, "sb", k)
	fa := addFn(t, sa, "f#0")
	fb := addFn(t, sb, "f#1")
	store := core.NewStateStore()

	baseA := sa.Account().Snapshot().ResidentBytes
	baseB := sb.Account().Snapshot().ResidentBytes
	baseFDsA, baseFDsB := sa.Proc().NumFDs(), sb.Proc().NumFDs()
	basePool := k.Pool().Resident()

	// Snapshots bracket each store operation tightly, so the deltas below
	// isolate state-store residency from guest linear-memory growth.
	const n = 64 << 10
	if _, err := fa.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	baseA = sa.Account().Snapshot().ResidentBytes
	if err := store.Put(fa, "shared"); err != nil {
		t.Fatal(err)
	}
	if got := sa.Account().Snapshot().ResidentBytes - baseA; got != n {
		t.Fatalf("put charged %d resident bytes to owner, want %d", got, n)
	}
	// Another instance of the pool overwrites the entry: instance A's
	// charge must be credited back to A, not debited from B.
	if _, err := fb.CallPacked(guest.ExportProduce, uint64(2*n)); err != nil {
		t.Fatal(err)
	}
	baseA = sa.Account().Snapshot().ResidentBytes
	baseB = sb.Account().Snapshot().ResidentBytes
	if err := store.Put(fb, "shared"); err != nil {
		t.Fatal(err)
	}
	if got := sa.Account().Snapshot().ResidentBytes - baseA; got != -n {
		t.Fatalf("overwrite credited %d resident bytes to the old owner, want %d", got, -n)
	}
	if got := sb.Account().Snapshot().ResidentBytes - baseB; got != 2*n {
		t.Fatalf("overwrite charged %d resident bytes to new owner, want %d", got, 2*n)
	}
	store.Delete(sa.Workflow(), "shared")
	if got := sb.Account().Snapshot().ResidentBytes - baseB; got != 0 {
		t.Fatalf("delete left %d resident bytes charged", got)
	}
	if store.Size() != 0 {
		t.Fatalf("store size = %d after delete", store.Size())
	}
	if got := sa.Proc().NumFDs(); got != baseFDsA {
		t.Fatalf("instance A FDs %d, want %d", got, baseFDsA)
	}
	if got := sb.Proc().NumFDs(); got != baseFDsB {
		t.Fatalf("instance B FDs %d, want %d", got, baseFDsB)
	}
	if got := k.Pool().Resident(); got != basePool {
		t.Fatalf("page pool resident %d, want %d", got, basePool)
	}
}

// TestStateStoreConcurrentInstances hammers one workflow-scoped store from
// several replica instances at once — concurrent Put/Get/Delete/Keys over
// both shared and per-instance keys — and then asserts the conservation
// properties: store drained, every sandbox account back to its residency
// baseline, FD tables and the kernel page pool unchanged. Run under -race.
func TestStateStoreConcurrentInstances(t *testing.T) {
	k := kernel.New("n")
	store := core.NewStateStore()
	wf := core.Workflow{Name: "wf", Tenant: "t"}

	const instances = 4
	shims := make([]*core.Shim, instances)
	fns := make([]*core.Function, instances)
	baseRes := make([]int64, instances)
	baseFDs := make([]int, instances)
	for i := range fns {
		s, err := core.NewShim(core.ShimConfig{
			Name: fmt.Sprintf("shim-f#%d", i), Workflow: wf, Kernel: k, Module: guest.Module(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		shims[i] = s
		fns[i] = addFn(t, s, fmt.Sprintf("f#%d", i))
	}

	// Grow each guest's linear memory once so the concurrent phase measures
	// state-store residency only, then record baselines.
	const n = 8 << 10
	for i, f := range fns {
		if _, err := f.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
			t.Fatal(err)
		}
		out, err := f.Output()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Deallocate(out.Ptr); err != nil {
			t.Fatal(err)
		}
		baseRes[i] = shims[i].Account().Snapshot().ResidentBytes
		baseFDs[i] = shims[i].Proc().NumFDs()
	}
	basePool := k.Pool().Resident()

	const rounds = 25
	var wg sync.WaitGroup
	for i := range fns {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := fns[i]
			own := fmt.Sprintf("own-%d", i)
			for r := 0; r < rounds; r++ {
				if _, err := f.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
					t.Errorf("instance %d produce: %v", i, err)
					return
				}
				if err := store.Put(f, own); err != nil {
					t.Errorf("instance %d put: %v", i, err)
					return
				}
				if err := store.Put(f, "shared"); err != nil {
					t.Errorf("instance %d put shared: %v", i, err)
					return
				}
				out, err := f.Output()
				if err == nil {
					_ = f.Deallocate(out.Ptr)
				}
				ref, err := store.Get(f, own)
				if err != nil {
					t.Errorf("instance %d get: %v", i, err)
					return
				}
				sum, err := f.Call(guest.ExportConsume, uint64(ref.Ptr), uint64(ref.Len))
				if err != nil {
					t.Errorf("instance %d consume: %v", i, err)
					return
				}
				if want := guest.ReferenceChecksum(guest.ReferenceProduce(n)); sum[0] != want {
					t.Errorf("instance %d: state checksum %#x, want %#x", i, sum[0], want)
					return
				}
				_ = f.Deallocate(ref.Ptr)
				if keys := store.Keys(wf); len(keys) == 0 {
					t.Errorf("instance %d: no keys visible mid-run", i)
					return
				}
				store.Delete(wf, own)
			}
		}()
	}
	wg.Wait()
	store.Delete(wf, "shared")

	if store.Size() != 0 {
		t.Fatalf("store size = %d after drain", store.Size())
	}
	if keys := store.Keys(wf); len(keys) != 0 {
		t.Fatalf("keys after drain: %v", keys)
	}
	for i, s := range shims {
		snap := s.Account().Snapshot()
		if snap.ResidentBytes != baseRes[i] {
			t.Fatalf("instance %d resident = %d, want baseline %d", i, snap.ResidentBytes, baseRes[i])
		}
		if got := s.Proc().NumFDs(); got != baseFDs[i] {
			t.Fatalf("instance %d FDs = %d, want baseline %d", i, got, baseFDs[i])
		}
	}
	if got := k.Pool().Resident(); got != basePool {
		t.Fatalf("page pool resident = %d, want baseline %d", got, basePool)
	}
}

func TestStateStorePutWithoutOutput(t *testing.T) {
	k := kernel.New("n")
	s := newShim(t, "s", k)
	f := addFn(t, s, "f")
	store := core.NewStateStore()
	// No produce: locate yields an empty region; storing zero bytes is
	// legal and Get returns a zero-length delivery.
	if err := store.Put(f, "empty"); err != nil {
		t.Fatal(err)
	}
	ref, err := store.Get(f, "empty")
	if err != nil || ref.Len != 0 {
		t.Fatalf("empty get = %+v, %v", ref, err)
	}
}
