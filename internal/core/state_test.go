package core_test

import (
	"errors"
	"testing"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/core"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
)

func TestStateStorePutGetRoundTrip(t *testing.T) {
	k := kernel.New("n")
	s := newShim(t, "s", k)
	f := addFn(t, s, "f")
	store := core.NewStateStore()

	const n = 100_000
	if _, err := f.CallPacked(guest.ExportProduce, uint64(n)); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(f, "frame"); err != nil {
		t.Fatal(err)
	}
	// New invocation: the guest heap is rewound (transient state is gone).
	out, _ := f.Output()
	if err := f.Deallocate(out.Ptr); err != nil {
		t.Fatal(err)
	}

	ref, err := store.Get(f, "frame")
	if err != nil {
		t.Fatal(err)
	}
	verifyDelivery(t, f, ref, n)
	if store.Size() != n {
		t.Fatalf("store size = %d", store.Size())
	}
}

func TestStateStoreWorkflowIsolation(t *testing.T) {
	k := kernel.New("n")
	store := core.NewStateStore()

	mkFn := func(name string, wf core.Workflow) *core.Function {
		s, err := core.NewShim(core.ShimConfig{Name: name, Workflow: wf, Kernel: k, Module: guest.Module()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return addFn(t, s, name)
	}
	wfA := core.Workflow{Name: "wf-a", Tenant: "t1"}
	wfB := core.Workflow{Name: "wf-b", Tenant: "t1"}
	wfA2 := core.Workflow{Name: "wf-a", Tenant: "t2"} // same name, other tenant

	fa := mkFn("a", wfA)
	fb := mkFn("b", wfB)
	fa2 := mkFn("a2", wfA2)

	if _, err := fa.CallPacked(guest.ExportProduce, 1000); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(fa, "secret"); err != nil {
		t.Fatal(err)
	}

	// Another workflow cannot see the entry.
	if _, err := store.Get(fb, "secret"); !errors.Is(err, core.ErrNoState) {
		t.Fatalf("cross-workflow get = %v", err)
	}
	// Same workflow name but another tenant cannot either.
	if _, err := store.Get(fa2, "secret"); !errors.Is(err, core.ErrNoState) {
		t.Fatalf("cross-tenant get = %v", err)
	}
	// The owner can.
	if _, err := store.Get(fa, "secret"); err != nil {
		t.Fatalf("owner get = %v", err)
	}
	if keys := store.Keys(wfA); len(keys) != 1 || keys[0] != "secret" {
		t.Fatalf("keys(wfA) = %v", keys)
	}
	if keys := store.Keys(wfB); len(keys) != 0 {
		t.Fatalf("keys(wfB) = %v", keys)
	}
}

func TestStateStoreOverwriteAndDelete(t *testing.T) {
	k := kernel.New("n")
	s := newShim(t, "s", k)
	f := addFn(t, s, "f")
	store := core.NewStateStore()

	if _, err := f.CallPacked(guest.ExportProduce, 500); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(f, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CallPacked(guest.ExportProduce, 200); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(f, "x"); err != nil {
		t.Fatal(err)
	}
	if store.Size() != 200 {
		t.Fatalf("size after overwrite = %d", store.Size())
	}
	store.Delete(s.Workflow(), "x")
	if _, err := store.Get(f, "x"); !errors.Is(err, core.ErrNoState) {
		t.Fatalf("get after delete = %v", err)
	}
	store.Delete(s.Workflow(), "x") // idempotent
}

func TestStateStorePutWithoutOutput(t *testing.T) {
	k := kernel.New("n")
	s := newShim(t, "s", k)
	f := addFn(t, s, "f")
	store := core.NewStateStore()
	// No produce: locate yields an empty region; storing zero bytes is
	// legal and Get returns a zero-length delivery.
	if err := store.Put(f, "empty"); err != nil {
		t.Fatal(err)
	}
	ref, err := store.Get(f, "empty")
	if err != nil || ref.Len != 0 {
		t.Fatalf("empty get = %+v, %v", ref, err)
	}
}
