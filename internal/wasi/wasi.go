// Package wasi implements the minimal WASI-like host interface the baseline
// (WasmEdge-style) data path uses, reproducing the boundary costs the paper
// attributes to WASI-mediated host interaction (§2.1 "WASI Overhead"):
// every call crosses the sandbox boundary through a host function, stages
// payload bytes in a host-side buffer (one user-space copy), and then enters
// the simulated kernel through a metered syscall (one kernel copy) — the
// "multiple context switches and data copies between user and kernel space"
// of §1.
//
// Provided functions (module name "wasi_snapshot_preview1"-style shortened
// to "wasi"): sock_send, sock_recv, fd_read, fd_write, clock_time_get,
// random_get.
package wasi

import (
	"fmt"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasm"
)

// ModuleName is the import module guests use for WASI functions.
const ModuleName = "wasi"

// Errno values returned to the guest (subset).
const (
	ErrnoSuccess uint32 = 0
	ErrnoBadF    uint32 = 8
	ErrnoInval   uint32 = 28
	ErrnoIO      uint32 = 29
)

// Host binds a guest to a simulated-kernel process, exposing WASI-style host
// functions. Files backs fd_read with in-memory file contents by descriptor.
type Host struct {
	proc  *kernel.Proc
	acct  *metrics.Account
	now   func() uint64 // nanoseconds, injectable for tests
	rng   uint64
	Files map[int][]byte
	// staging is the reusable host-side buffer that models the iovec
	// staging copy real WASI implementations perform between linear
	// memory and the syscall.
	staging []byte
	// DisableStagingCopy removes the staging copy (ablation: how much of
	// the WasmEdge baseline's overhead is WASI's extra copy).
	DisableStagingCopy bool
}

// NewHost creates a WASI host bound to a simulated process. acct is charged
// for the staging copies; it may be nil.
func NewHost(proc *kernel.Proc, acct *metrics.Account) *Host {
	return &Host{
		proc:  proc,
		acct:  acct,
		now:   func() uint64 { return 0 },
		rng:   0x9E3779B97F4A7C15,
		Files: make(map[int][]byte),
	}
}

// SetClock injects a monotonic nanosecond clock.
func (h *Host) SetClock(now func() uint64) { h.now = now }

// Imports returns the WASI host functions for instantiation.
func (h *Host) Imports() map[string]wasm.HostFunc {
	i32 := wasm.I32
	sig3 := wasm.FuncType{Params: []wasm.ValType{i32, i32, i32}, Results: []wasm.ValType{i32}}
	return map[string]wasm.HostFunc{
		"sock_send":      {Type: sig3, Fn: h.sockSend},
		"sock_recv":      {Type: sig3, Fn: h.sockRecv},
		"fd_read":        {Type: sig3, Fn: h.fdRead},
		"fd_write":       {Type: sig3, Fn: h.fdWrite},
		"clock_time_get": {Type: wasm.FuncType{Results: []wasm.ValType{wasm.I64}}, Fn: h.clockTimeGet},
		"random_get":     {Type: wasm.FuncType{Params: []wasm.ValType{i32, i32}, Results: []wasm.ValType{i32}}, Fn: h.randomGet},
	}
}

func (h *Host) stage(n int) []byte {
	if cap(h.staging) < n {
		h.staging = make([]byte, n)
	}
	return h.staging[:n]
}

// sockSend copies [ptr, ptr+len) out of linear memory into the staging
// buffer, then writes it to the socket through the kernel. Two copies + one
// syscall, as on a real WASI runtime.
func (h *Host) sockSend(ctx *wasm.HostContext, args []uint64) ([]uint64, error) {
	fd, ptr, n := int(int32(args[0])), uint32(args[1]), uint32(args[2])
	mem := ctx.Memory()
	view, err := mem.View(ptr, n)
	if err != nil {
		return []uint64{uint64(ErrnoInval)}, nil
	}
	buf := view
	if !h.DisableStagingCopy {
		buf = h.stage(int(n))
		copy(buf, view)
		h.acct.Copy(metrics.User, int(n))
	}
	if _, err := h.proc.Write(fd, buf); err != nil {
		return []uint64{uint64(ErrnoIO)}, nil
	}
	return []uint64{uint64(ErrnoSuccess)}, nil
}

// sockRecv reads from the socket into the staging buffer, then copies into
// linear memory. Returns the byte count through errno-free convention:
// negative errno is encoded in the sign bit; success returns the count.
func (h *Host) sockRecv(ctx *wasm.HostContext, args []uint64) ([]uint64, error) {
	fd, ptr, n := int(int32(args[0])), uint32(args[1]), uint32(args[2])
	mem := ctx.Memory()
	if _, err := mem.View(ptr, n); err != nil {
		return []uint64{uint64(negErrno(ErrnoInval))}, nil
	}
	buf := h.stage(int(n))
	got, err := h.proc.Read(fd, buf)
	if err != nil && got == 0 {
		return []uint64{uint64(negErrno(ErrnoIO))}, nil
	}
	if err := mem.WriteAt(buf[:got], ptr); err != nil {
		return []uint64{uint64(negErrno(ErrnoInval))}, nil
	}
	h.acct.Copy(metrics.User, got)
	return []uint64{uint64(uint32(got))}, nil
}

// fdRead copies from an in-memory file into linear memory (staging copy +
// boundary copy), consuming the file contents as a stream.
func (h *Host) fdRead(ctx *wasm.HostContext, args []uint64) ([]uint64, error) {
	fd, ptr, n := int(int32(args[0])), uint32(args[1]), uint32(args[2])
	data, ok := h.Files[fd]
	if !ok {
		return []uint64{uint64(negErrno(ErrnoBadF))}, nil
	}
	if int(n) > len(data) {
		n = uint32(len(data))
	}
	h.proc.Account().Syscall()
	buf := h.stage(int(n))
	copy(buf, data[:n])
	h.acct.Copy(metrics.Kernel, int(n)) // file read crosses the kernel
	if err := ctx.Memory().WriteAt(buf, ptr); err != nil {
		return []uint64{uint64(negErrno(ErrnoInval))}, nil
	}
	h.acct.Copy(metrics.User, int(n))
	h.Files[fd] = data[n:]
	return []uint64{uint64(uint32(n))}, nil
}

// fdWrite discards payload (stdout-style sink) after performing the same
// staging + kernel copies a real fd_write would.
func (h *Host) fdWrite(ctx *wasm.HostContext, args []uint64) ([]uint64, error) {
	_, ptr, n := int(int32(args[0])), uint32(args[1]), uint32(args[2])
	view, err := ctx.Memory().View(ptr, n)
	if err != nil {
		return []uint64{uint64(negErrno(ErrnoInval))}, nil
	}
	buf := h.stage(int(n))
	copy(buf, view)
	h.acct.Copy(metrics.User, int(n))
	h.proc.Account().Syscall()
	h.acct.Copy(metrics.Kernel, int(n))
	return []uint64{uint64(uint32(n))}, nil
}

func (h *Host) clockTimeGet(_ *wasm.HostContext, _ []uint64) ([]uint64, error) {
	return []uint64{h.now()}, nil
}

func (h *Host) randomGet(ctx *wasm.HostContext, args []uint64) ([]uint64, error) {
	ptr, n := uint32(args[0]), uint32(args[1])
	view, err := ctx.Memory().View(ptr, n)
	if err != nil {
		return []uint64{uint64(ErrnoInval)}, nil
	}
	for i := range view {
		h.rng = h.rng*6364136223846793005 + 1442695040888963407
		view[i] = byte(h.rng >> 56)
	}
	return []uint64{uint64(ErrnoSuccess)}, nil
}

// AddImports registers every WASI function under ModuleName.
func (h *Host) AddImports(im wasm.Imports) {
	for name, f := range h.Imports() {
		im.Add(ModuleName, name, f)
	}
}

// String describes the host binding for diagnostics.
func (h *Host) String() string {
	return fmt.Sprintf("wasi host on %s", h.proc.Name())
}

// negErrno encodes an errno as the negative i32 return convention used by
// the count-returning WASI calls.
func negErrno(errno uint32) uint32 { return uint32(-int32(errno)) }
