package wasi_test

import (
	"bytes"
	"testing"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/metrics"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasi"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasm"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasmbuild"
)

// testGuest builds a tiny module importing the WASI surface and exposing
// thin wrappers, so each host function is exercised through a real sandbox
// boundary.
func testGuest(t *testing.T, host *wasi.Host) *wasm.Instance {
	t.Helper()
	b := wasmbuild.New()
	i32 := wasm.I32
	sig3 := []wasm.ValType{i32, i32, i32}
	sockSend := b.ImportFunc(wasi.ModuleName, "sock_send", sig3, []wasm.ValType{i32})
	sockRecv := b.ImportFunc(wasi.ModuleName, "sock_recv", sig3, []wasm.ValType{i32})
	fdRead := b.ImportFunc(wasi.ModuleName, "fd_read", sig3, []wasm.ValType{i32})
	fdWrite := b.ImportFunc(wasi.ModuleName, "fd_write", sig3, []wasm.ValType{i32})
	clock := b.ImportFunc(wasi.ModuleName, "clock_time_get", nil, []wasm.ValType{wasm.I64})
	random := b.ImportFunc(wasi.ModuleName, "random_get", []wasm.ValType{i32, i32}, []wasm.ValType{i32})
	b.Memory(1, 4, "memory")

	wrap3 := func(name string, ref wasmbuild.FuncRef) {
		f := b.NewFunc(name, sig3, []wasm.ValType{i32})
		f.LocalGet(0).LocalGet(1).LocalGet(2).Call(ref)
	}
	wrap3("send", sockSend)
	wrap3("recv", sockRecv)
	wrap3("read", fdRead)
	wrap3("write", fdWrite)
	fc := b.NewFunc("clock", nil, []wasm.ValType{wasm.I64})
	fc.Call(clock)
	fr := b.NewFunc("random", []wasm.ValType{i32, i32}, []wasm.ValType{i32})
	fr.LocalGet(0).LocalGet(1).Call(random)

	m, err := wasm.Decode(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	imports := wasm.Imports{}
	host.AddImports(imports)
	inst, err := wasm.Instantiate(m, imports, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSockSendRecvRoundTrip(t *testing.T) {
	k := kernel.New("n")
	acct := &metrics.Account{}
	pa := k.NewProc("a", acct)
	pb := k.NewProc("b", acct)
	defer pa.CloseAll()
	defer pb.CloseAll()
	fa, fb, err := kernel.SocketPair(pa, pb)
	if err != nil {
		t.Fatal(err)
	}

	hostA := wasi.NewHost(pa, acct)
	hostB := wasi.NewHost(pb, acct)
	instA := testGuest(t, hostA)
	instB := testGuest(t, hostB)

	msg := []byte("wasi boundary crossing")
	if err := instA.Memory().WriteAt(msg, 64); err != nil {
		t.Fatal(err)
	}
	res, err := instA.Call("send", uint64(fa), 64, uint64(len(msg)))
	if err != nil || uint32(res[0]) != wasi.ErrnoSuccess {
		t.Fatalf("send = %v, %v", res, err)
	}
	res, err = instB.Call("recv", uint64(fb), 128, uint64(len(msg)))
	if err != nil || int32(res[0]) != int32(len(msg)) {
		t.Fatalf("recv = %v, %v", res, err)
	}
	got, err := instB.Memory().View(128, uint32(len(msg)))
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("payload = %q, %v", got, err)
	}
	// Staging copies charged on both sides (send + recv).
	if u := acct.Snapshot(); u.UserCopyBytes < int64(2*len(msg)) {
		t.Fatalf("staging copies = %d", u.UserCopyBytes)
	}
}

func TestSockSendBadPointer(t *testing.T) {
	k := kernel.New("n")
	p := k.NewProc("a", nil)
	defer p.CloseAll()
	host := wasi.NewHost(p, nil)
	inst := testGuest(t, host)
	res, err := inst.Call("send", 3, 0xFFFFFF, 100)
	if err != nil || uint32(res[0]) != wasi.ErrnoInval {
		t.Fatalf("send oob = %v, %v", res, err)
	}
}

func TestSockSendBadFD(t *testing.T) {
	k := kernel.New("n")
	p := k.NewProc("a", nil)
	defer p.CloseAll()
	host := wasi.NewHost(p, nil)
	inst := testGuest(t, host)
	res, err := inst.Call("send", 99, 0, 4)
	if err != nil || uint32(res[0]) != wasi.ErrnoIO {
		t.Fatalf("send bad fd = %v, %v", res, err)
	}
}

func TestSockRecvErrnoEncoding(t *testing.T) {
	k := kernel.New("n")
	p := k.NewProc("a", nil)
	defer p.CloseAll()
	host := wasi.NewHost(p, nil)
	inst := testGuest(t, host)
	res, err := inst.Call("recv", 99, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := int32(res[0]); got != -int32(wasi.ErrnoIO) {
		t.Fatalf("recv bad fd = %d, want %d", got, -int32(wasi.ErrnoIO))
	}
}

func TestFdReadStreamsFile(t *testing.T) {
	k := kernel.New("n")
	acct := &metrics.Account{}
	p := k.NewProc("a", acct)
	defer p.CloseAll()
	host := wasi.NewHost(p, acct)
	host.Files[5] = []byte("0123456789")
	inst := testGuest(t, host)

	res, err := inst.Call("read", 5, 0, 4)
	if err != nil || res[0] != 4 {
		t.Fatalf("read 1 = %v, %v", res, err)
	}
	res, err = inst.Call("read", 5, 4, 100)
	if err != nil || res[0] != 6 {
		t.Fatalf("read 2 = %v, %v", res, err)
	}
	got, _ := inst.Memory().View(0, 10)
	if string(got) != "0123456789" {
		t.Fatalf("file content = %q", got)
	}
	// EOF: zero bytes.
	res, err = inst.Call("read", 5, 0, 10)
	if err != nil || res[0] != 0 {
		t.Fatalf("read at EOF = %v, %v", res, err)
	}
	// Unknown fd.
	res, err = inst.Call("read", 42, 0, 10)
	if err != nil || int32(res[0]) != -int32(wasi.ErrnoBadF) {
		t.Fatalf("read bad fd = %v, %v", res, err)
	}
}

func TestFdWriteChargesBoundaryCosts(t *testing.T) {
	k := kernel.New("n")
	acct := &metrics.Account{}
	p := k.NewProc("a", acct)
	defer p.CloseAll()
	host := wasi.NewHost(p, acct)
	inst := testGuest(t, host)
	before := acct.Snapshot()
	res, err := inst.Call("write", 1, 0, 1000)
	if err != nil || res[0] != 1000 {
		t.Fatalf("write = %v, %v", res, err)
	}
	delta := acct.Snapshot().Sub(before)
	if delta.UserCopyBytes != 1000 || delta.KernelCopyBytes != 1000 {
		t.Fatalf("copies = %d user / %d kernel", delta.UserCopyBytes, delta.KernelCopyBytes)
	}
	if delta.Syscalls != 1 {
		t.Fatalf("syscalls = %d", delta.Syscalls)
	}
}

func TestClockInjectable(t *testing.T) {
	k := kernel.New("n")
	p := k.NewProc("a", nil)
	defer p.CloseAll()
	host := wasi.NewHost(p, nil)
	host.SetClock(func() uint64 { return 123456789 })
	inst := testGuest(t, host)
	res, err := inst.Call("clock")
	if err != nil || res[0] != 123456789 {
		t.Fatalf("clock = %v, %v", res, err)
	}
}

func TestRandomGetFillsMemory(t *testing.T) {
	k := kernel.New("n")
	p := k.NewProc("a", nil)
	defer p.CloseAll()
	host := wasi.NewHost(p, nil)
	inst := testGuest(t, host)
	res, err := inst.Call("random", 0, 64)
	if err != nil || uint32(res[0]) != wasi.ErrnoSuccess {
		t.Fatalf("random = %v, %v", res, err)
	}
	view, _ := inst.Memory().View(0, 64)
	zero := make([]byte, 64)
	if bytes.Equal(view, zero) {
		t.Fatal("random_get left memory zeroed")
	}
	// OOB pointer fails cleanly.
	res, err = inst.Call("random", 0xFFFFFF, 64)
	if err != nil || uint32(res[0]) != wasi.ErrnoInval {
		t.Fatalf("random oob = %v, %v", res, err)
	}
}

func TestDisableStagingCopyAblation(t *testing.T) {
	k := kernel.New("n")
	acct := &metrics.Account{}
	pa := k.NewProc("a", acct)
	pb := k.NewProc("b", nil)
	defer pa.CloseAll()
	defer pb.CloseAll()
	fa, _, err := kernel.SocketPair(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	host := wasi.NewHost(pa, acct)
	host.DisableStagingCopy = true
	inst := testGuest(t, host)
	before := acct.Snapshot()
	if _, err := inst.Call("send", uint64(fa), 0, 512); err != nil {
		t.Fatal(err)
	}
	delta := acct.Snapshot().Sub(before)
	if delta.UserCopyBytes != 0 {
		t.Fatalf("staging disabled but %d user bytes copied", delta.UserCopyBytes)
	}
	if delta.KernelCopyBytes != 512 {
		t.Fatalf("kernel copy = %d", delta.KernelCopyBytes)
	}
}

func TestHostString(t *testing.T) {
	k := kernel.New("n")
	p := k.NewProc("sandbox-7", nil)
	defer p.CloseAll()
	host := wasi.NewHost(p, nil)
	if got := host.String(); got != "wasi host on sandbox-7" {
		t.Fatalf("String() = %q", got)
	}
}
