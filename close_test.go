// Tests for platform teardown semantics: Close drains the async worker
// pool before tearing down shims, and every public data-plane API called
// after Close returns ErrClosed instead of racing teardown.
package roadrunner_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
)

// TestCloseDrainsAsyncInFlight closes the platform while a burst of async
// transfers is in flight: every accepted future must resolve — either with
// a completed delivery (it was drained against live shims) or with
// ErrClosed (it was submitted after Close began) — and never hang, panic or
// race teardown. Run under -race.
func TestCloseDrainsAsyncInFlight(t *testing.T) {
	p := roadrunner.New(roadrunner.WithWorkers(4))
	const pairs = 4
	srcs := make([]*roadrunner.Function, pairs)
	dsts := make([]*roadrunner.Function, pairs)
	for i := 0; i < pairs; i++ {
		wf := roadrunner.Workflow{Name: fmt.Sprintf("wf-%d", i), Tenant: "close"}
		var err error
		if srcs[i], err = p.Deploy(roadrunner.FunctionSpec{Name: fmt.Sprintf("s%d", i), Node: "edge", Workflow: wf}); err != nil {
			t.Fatal(err)
		}
		if dsts[i], err = p.Deploy(roadrunner.FunctionSpec{Name: fmt.Sprintf("d%d", i), Node: "cloud", Workflow: wf}); err != nil {
			t.Fatal(err)
		}
		if err := srcs[i].Produce(8 << 10); err != nil {
			t.Fatal(err)
		}
	}

	const perPair = 12
	futs := make(chan *roadrunner.TransferFuture, pairs*perPair)
	var launchers sync.WaitGroup
	for i := 0; i < pairs; i++ {
		i := i
		launchers.Add(1)
		go func() {
			defer launchers.Done()
			for k := 0; k < perPair; k++ {
				futs <- p.TransferAsync(srcs[i], dsts[i])
			}
		}()
	}
	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	launchers.Wait()
	close(futs)

	resolved := 0
	for fut := range futs {
		if _, _, err := fut.Wait(); err != nil && !errors.Is(err, roadrunner.ErrClosed) {
			t.Fatalf("future resolved with %v, want success or ErrClosed", err)
		}
		resolved++
	}
	if resolved != pairs*perPair {
		t.Fatalf("resolved %d futures, want %d", resolved, pairs*perPair)
	}
	<-closed

	// Every public data-plane entry point must now answer ErrClosed.
	src, dst := srcs[0], dsts[0]
	checks := map[string]error{
		"Deploy": func() error {
			_, err := p.Deploy(roadrunner.FunctionSpec{Name: "late", Node: "edge"})
			return err
		}(),
		"Transfer": func() error { _, _, err := p.Transfer(src, dst); return err }(),
		"Invoke":   func() error { _, err := p.Invoke(src, dst, 1024); return err }(),
		"Chain":    func() error { _, _, err := p.Chain(1024, src, dst); return err }(),
		"Multicast": func() error {
			_, _, err := p.Multicast(src, []*roadrunner.Function{dst})
			return err
		}(),
		"Fanout": func() error {
			_, _, err := p.Fanout(src, []*roadrunner.Function{dst}, 1024)
			return err
		}(),
		"Produce":          src.Produce(1024),
		"Output":           func() error { _, err := src.Output(); return err }(),
		"SetOutput":        src.SetOutput(roadrunner.DataRef{}),
		"Checksum":         func() error { _, err := src.Checksum(roadrunner.DataRef{}); return err }(),
		"Release":          src.Release(roadrunner.DataRef{}),
		"Call":             func() error { _, err := src.Call("produce", 8); return err }(),
		"ResizeHalf":       func() error { _, err := src.ResizeHalf(roadrunner.DataRef{}, 0, 0); return err }(),
		"SaveState":        src.SaveState("k"),
		"LoadState":        func() error { _, err := src.LoadState("k"); return err }(),
		"Instance.Produce": src.Instance(0).Produce(1024),
		"Instance.Checksum": func() error {
			_, err := src.Instance(0).Checksum(roadrunner.DataRef{})
			return err
		}(),
		"TransferAsync": func() error { _, _, err := p.TransferAsync(src, dst).Wait(); return err }(),
		"ChainAsync":    func() error { _, _, err := p.ChainAsync(1024, src, dst).Wait(); return err }(),
		"FanoutAsync": func() error {
			_, err := p.FanoutAsync(src, []*roadrunner.Function{dst}, 1024)
			return err
		}(),
	}
	for name, err := range checks {
		if !errors.Is(err, roadrunner.ErrClosed) {
			t.Errorf("%s after Close = %v, want ErrClosed", name, err)
		}
	}
}

// TestCloseWithSyncTransfersInFlight overlaps Close with direct synchronous
// transfers: each call must either complete against live shims or return
// ErrClosed — teardown never runs under an admitted operation.
func TestCloseWithSyncTransfersInFlight(t *testing.T) {
	p := roadrunner.New()
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "s", Node: "edge"})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := p.Deploy(roadrunner.FunctionSpec{Name: "d", Node: "cloud"})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Produce(8 << 10); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 16; k++ {
				if _, _, err := p.Transfer(src, dst); err != nil {
					if !errors.Is(err, roadrunner.ErrClosed) {
						t.Errorf("transfer during close: %v", err)
					}
					return
				}
			}
		}()
	}
	p.Close()
	wg.Wait()
}
