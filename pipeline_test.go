// Public-API tests for the staged data-plane pipeline: streaming chains,
// per-target multicast link modeling, and the pool-parallel fan-out.
package roadrunner_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
)

// TestChainPhaseLockedAblation: the two regimes deliver identical payloads
// and identical syscall/copy accounting; only the overlap attribution (and
// therefore the critical-path latency) differs.
func TestChainPhaseLockedAblation(t *testing.T) {
	build := func() (*roadrunner.Platform, []*roadrunner.Function) {
		p := newPlatform(t, roadrunner.WithDataHoseSize(64<<10))
		fns := make([]*roadrunner.Function, 4)
		for i := range fns {
			node := "edge"
			if i%2 == 1 {
				node = "cloud"
			}
			fns[i] = deploy(t, p, roadrunner.FunctionSpec{Name: fmt.Sprintf("f%d", i), Node: node})
		}
		return p, fns
	}
	const n = 256 << 10
	run := func(opts []roadrunner.TransferOption) roadrunner.Report {
		p, fns := build()
		ref, rep, err := p.ChainWith(n, opts, fns...)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := fns[len(fns)-1].Checksum(ref)
		if err != nil || sum != roadrunner.ExpectedChecksum(n) {
			t.Fatalf("chain corrupted: %v", err)
		}
		return rep
	}
	pipelined := run(nil)
	locked := run([]roadrunner.TransferOption{roadrunner.WithPhaseLocked(true)})

	if pipelined.Usage.Syscalls != locked.Usage.Syscalls {
		t.Fatalf("syscalls: pipelined %d != phase-locked %d", pipelined.Usage.Syscalls, locked.Usage.Syscalls)
	}
	if pipelined.Usage.TotalCopyBytes() != locked.Usage.TotalCopyBytes() {
		t.Fatalf("copies: pipelined %d != phase-locked %d",
			pipelined.Usage.TotalCopyBytes(), locked.Usage.TotalCopyBytes())
	}
	if locked.Breakdown.Overlap != 0 {
		t.Fatalf("phase-locked chain reported overlap %v", locked.Breakdown.Overlap)
	}
	if pipelined.Breakdown.Overlap <= 0 {
		t.Fatal("pipelined multi-chunk chain reported no overlap")
	}
	if pipelined.Latency() >= locked.Latency() {
		t.Fatalf("pipelined critical path %v not below phase-locked %v", pipelined.Latency(), locked.Latency())
	}
}

// TestConcurrentSharedInteriorChainsPublic drives several streaming chains
// through one shared interior function concurrently (the public-API face of
// the core-level stress test) and verifies every delivery.
func TestConcurrentSharedInteriorChainsPublic(t *testing.T) {
	p := newPlatform(t)
	interior := deploy(t, p, roadrunner.FunctionSpec{Name: "hub", Node: "edge"})
	const chains, rounds = 4, 3
	heads := make([]*roadrunner.Function, chains)
	tails := make([]*roadrunner.Function, chains)
	for i := 0; i < chains; i++ {
		heads[i] = deploy(t, p, roadrunner.FunctionSpec{Name: fmt.Sprintf("h%d", i), Node: "edge"})
		tails[i] = deploy(t, p, roadrunner.FunctionSpec{Name: fmt.Sprintf("t%d", i), Node: "cloud"})
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < chains; i++ {
			i := i
			n := 32<<10 + 512*i // per-chain payload, checksum-distinguishable
			wg.Add(1)
			go func() {
				defer wg.Done()
				ref, _, err := p.Chain(n, heads[i], interior, tails[i])
				if err != nil {
					t.Errorf("chain %d: %v", i, err)
					return
				}
				sum, err := tails[i].Checksum(ref)
				if err != nil {
					t.Errorf("chain %d checksum: %v", i, err)
					return
				}
				if want := roadrunner.ExpectedChecksum(n); sum != want {
					t.Errorf("chain %d: checksum %#x, want %#x", i, sum, want)
				}
			}()
		}
		wg.Wait()
	}
}

// TestMulticastPerTargetLinks is the mixed-link regression test: each
// multicast target's wire time must be modeled on ITS link, not the first
// remote target's (the pre-fix behavior charged every target the first
// link, inflating fast targets behind any slow sibling and vice versa).
func TestMulticastPerTargetLinks(t *testing.T) {
	p := newPlatform(t, roadrunner.WithNodes("edge", "fast", "slow"))
	p.SetLink("edge", "fast", 1000*roadrunner.Mbps, 0)
	p.SetLink("edge", "slow", 10*roadrunner.Mbps, 0)
	src := deploy(t, p, roadrunner.FunctionSpec{Name: "src", Node: "edge"})
	tFast := deploy(t, p, roadrunner.FunctionSpec{Name: "tf", Node: "fast"})
	tSlow := deploy(t, p, roadrunner.FunctionSpec{Name: "ts", Node: "slow"})

	const n = 1_000_000
	if err := src.Produce(n); err != nil {
		t.Fatal(err)
	}
	refs, reports, err := p.Multicast(src, []*roadrunner.Function{tFast, tSlow})
	if err != nil {
		t.Fatal(err)
	}
	for i, dst := range []*roadrunner.Function{tFast, tSlow} {
		sum, err := dst.Checksum(refs[i])
		if err != nil || sum != roadrunner.ExpectedChecksum(n) {
			t.Fatalf("target %d corrupted: %v", i, err)
		}
	}
	// 1 MB over a dedicated link: 8 ms at 1000 Mbps, 800 ms at 10 Mbps —
	// each target charged its own link with one flow on it.
	wantFast, wantSlow := 8*time.Millisecond, 800*time.Millisecond
	if got := reports[0].Breakdown.Network; got < wantFast*9/10 || got > wantFast*11/10 {
		t.Fatalf("fast target network = %v, want ~%v", got, wantFast)
	}
	if got := reports[1].Breakdown.Network; got < wantSlow*9/10 || got > wantSlow*11/10 {
		t.Fatalf("slow target network = %v, want ~%v", got, wantSlow)
	}

	// WithFlows overrides the per-link sharing degree (previously silently
	// ignored): doubling the flow count doubles each link's transmit time.
	if err := src.Produce(n); err != nil {
		t.Fatal(err)
	}
	_, reports2, err := p.Multicast(src, []*roadrunner.Function{tFast, tSlow}, roadrunner.WithFlows(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range reports2 {
		if got, base := reports2[i].Breakdown.Network, reports[i].Breakdown.Network; got < base*19/10 || got > base*21/10 {
			t.Fatalf("target %d with 2 flows: network %v, want ~2x %v", i, got, base)
		}
	}
}

// TestMulticastSharedLinkSplitsFlows: targets reached over the SAME link
// share its bandwidth (default flow count = targets per link).
func TestMulticastSharedLinkSplitsFlows(t *testing.T) {
	p := newPlatform(t, roadrunner.WithNodes("edge", "cloud"), roadrunner.WithLink(100*roadrunner.Mbps, 0))
	src := deploy(t, p, roadrunner.FunctionSpec{Name: "src", Node: "edge"})
	targets := make([]*roadrunner.Function, 2)
	for i := range targets {
		targets[i] = deploy(t, p, roadrunner.FunctionSpec{Name: fmt.Sprintf("t%d", i), Node: "cloud"})
	}
	const n = 1_000_000
	if err := src.Produce(n); err != nil {
		t.Fatal(err)
	}
	_, reports, err := p.Multicast(src, targets)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB at 100 Mbps is 80 ms; two flows sharing the link halve the
	// per-flow bandwidth: 160 ms each.
	want := 160 * time.Millisecond
	for i, rep := range reports {
		if got := rep.Breakdown.Network; got < want*9/10 || got > want*11/10 {
			t.Fatalf("target %d network = %v, want ~%v", i, got, want)
		}
	}
}

// TestMulticastRejectsForcedMode: multicast is network-path only; forcing a
// mechanism must fail loudly instead of being silently ignored.
func TestMulticastRejectsForcedMode(t *testing.T) {
	p := newPlatform(t)
	src := deploy(t, p, roadrunner.FunctionSpec{Name: "src", Node: "edge"})
	dst := deploy(t, p, roadrunner.FunctionSpec{Name: "dst", Node: "cloud"})
	if err := src.Produce(1 << 10); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []roadrunner.Mode{roadrunner.ModeUserSpace, roadrunner.ModeKernelSpace} {
		if _, _, err := p.Multicast(src, []*roadrunner.Function{dst}, roadrunner.WithMode(mode)); !errors.Is(err, roadrunner.ErrModeUnavailable) {
			t.Fatalf("forced %v multicast = %v, want ErrModeUnavailable", mode, err)
		}
	}
	// ModeNetwork and ModeAuto are both fine.
	if _, _, err := p.Multicast(src, []*roadrunner.Function{dst}, roadrunner.WithMode(roadrunner.ModeNetwork)); err != nil {
		t.Fatalf("explicit network multicast: %v", err)
	}
}

// TestFanoutRunsOnWorkerPool: Fanout routes its deliveries through the
// platform's bounded pool (sharing the single produced payload), keeps
// report order, and still models link sharing across the fan-out.
func TestFanoutRunsOnWorkerPool(t *testing.T) {
	p := newPlatform(t)
	src := deploy(t, p, roadrunner.FunctionSpec{Name: "src", Node: "edge"})
	targets := make([]*roadrunner.Function, 6)
	for i := range targets {
		targets[i] = deploy(t, p, roadrunner.FunctionSpec{Name: fmt.Sprintf("t%d", i), Node: "cloud"})
	}
	before := p.SchedulerStats().Submitted
	const n = 64 << 10
	_, reports, err := p.Fanout(src, targets, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(targets) {
		t.Fatalf("reports = %d, want %d", len(reports), len(targets))
	}
	for i, rep := range reports {
		if rep.Mode != "network" {
			t.Fatalf("report %d mode = %q", i, rep.Mode)
		}
		if rep.Bytes != n {
			t.Fatalf("report %d bytes = %d", i, rep.Bytes)
		}
	}
	if got := p.SchedulerStats().Submitted - before; got != int64(len(targets)) {
		t.Fatalf("fanout submitted %d pool tasks, want %d", got, len(targets))
	}
}

// TestFanoutParallelThroughput asserts the aggregate-throughput win of the
// pool-parallel fan-out over a strictly sequential delivery loop of the
// same population. The win requires real parallelism, so the wall-clock
// assertion only runs with 2+ scheduler threads; the structural properties
// are asserted unconditionally above.
func TestFanoutParallelThroughput(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("aggregate-throughput comparison needs 2+ CPUs")
	}
	const degree, n = 8, 512 << 10
	build := func() (*roadrunner.Platform, *roadrunner.Function, []*roadrunner.Function) {
		p := newPlatform(t)
		src := deploy(t, p, roadrunner.FunctionSpec{Name: "src", Node: "edge"})
		targets := make([]*roadrunner.Function, degree)
		for i := range targets {
			targets[i] = deploy(t, p, roadrunner.FunctionSpec{Name: fmt.Sprintf("t%d", i), Node: "cloud"})
		}
		// Prime channels so both measurements are warm.
		if _, _, err := p.Fanout(src, targets, n); err != nil {
			t.Fatal(err)
		}
		return p, src, targets
	}

	p1, src1, targets1 := build()
	start := time.Now()
	if _, _, err := p1.Fanout(src1, targets1, n); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)

	p2, src2, targets2 := build()
	if err := src2.Produce(n); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	for _, dst := range targets2 {
		if _, _, err := p2.Transfer(src2, dst, roadrunner.WithFlows(degree)); err != nil {
			t.Fatal(err)
		}
	}
	sequential := time.Since(start)

	// Generous margin: the parallel fan-out must beat the sequential loop
	// by at least 10% in aggregate throughput.
	if float64(parallel) > 0.9*float64(sequential) {
		t.Fatalf("parallel fanout %v vs sequential %v: no aggregate-throughput win", parallel, sequential)
	}
}
