// Cancellation conservation tests: a context cancelled mid-operation must
// abort with context.Canceled AND leave every data-plane baseline exact —
// FD tables, the kernel page pool, the channel-cache active count, account
// residency, and the guests' bump allocators (pinned interior refs freed).
//
// Determinism comes from the pipeline gate (TestingWithGates): the gate
// callback runs in the ingress goroutine while the payload is on the wire
// — queued in the channel, neither VM lock held — so firing cancel inside
// it guarantees the cancellation lands exactly at the "on the wire" stage
// boundary. Conservation is asserted steady-state: every scenario runs
// twice, with baselines captured between the runs, so the first run absorbs
// one-time warm-up (cached channels of the hops that completed) and any
// per-occurrence leak of the second run shows up as a baseline delta.
// All tests here run under -race in CI.
package roadrunner_test

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
)

// baselines is a point-in-time snapshot of every conserved quantity.
type baselines struct {
	fds      map[string][]int
	resident map[string][]int64
	pool     map[string]int64
	active   int64
	// probe is each probed function's next-allocation pointer, proving the
	// guest bump allocators rewound (a leaked interior ref would push it).
	probe map[string]uint32
}

// snapshotBaselines captures the conserved quantities across fns and nodes.
func snapshotBaselines(t *testing.T, p *roadrunner.Platform, nodes []string, fns ...*roadrunner.Function) baselines {
	t.Helper()
	b := baselines{
		fds:      make(map[string][]int),
		resident: make(map[string][]int64),
		pool:     make(map[string]int64),
		probe:    make(map[string]uint32),
	}
	for _, f := range fns {
		b.fds[f.Name()] = roadrunner.TestingInstanceFDs(f)
		b.resident[f.Name()] = roadrunner.TestingInstanceResident(f)
		b.probe[f.Name()] = allocProbe(t, f)
	}
	for _, n := range nodes {
		b.pool[n] = roadrunner.TestingPoolResident(p, n)
	}
	b.active = int64(p.ChannelStats().Active)
	return b
}

// allocProbe returns the address a fresh allocation would land at in f's
// active instance, without disturbing the heap (produce then release).
func allocProbe(t *testing.T, f *roadrunner.Function) uint32 {
	t.Helper()
	inst := f.ActiveInstance()
	if err := inst.Produce(64); err != nil {
		t.Fatalf("probe produce at %s: %v", inst.Name(), err)
	}
	out, err := inst.Output()
	if err != nil {
		t.Fatalf("probe output at %s: %v", inst.Name(), err)
	}
	if err := inst.Release(out); err != nil {
		t.Fatalf("probe release at %s: %v", inst.Name(), err)
	}
	return out.Ptr
}

// assertBaselines compares a fresh snapshot against b.
func assertBaselines(t *testing.T, p *roadrunner.Platform, nodes []string, b baselines, fns ...*roadrunner.Function) {
	t.Helper()
	now := snapshotBaselines(t, p, nodes, fns...)
	for name, want := range b.fds {
		got := now.fds[name]
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s instance %d: FDs = %d, want baseline %d", name, i, got[i], want[i])
			}
		}
	}
	for name, want := range b.resident {
		got := now.resident[name]
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s instance %d: resident = %d, want baseline %d", name, i, got[i], want[i])
			}
		}
	}
	for n, want := range b.pool {
		if got := now.pool[n]; got != want {
			t.Errorf("node %s: page-pool resident = %d, want baseline %d", n, got, want)
		}
	}
	if now.active != b.active {
		t.Errorf("channel-cache active = %d, want baseline %d", now.active, b.active)
	}
	for name, want := range b.probe {
		if got := now.probe[name]; got != want {
			t.Errorf("%s: alloc probe = %#x, want baseline %#x (bump heap not rewound)", name, got, want)
		}
	}
}

// TestCancelMidTransferConservesBaselines cancels a network transfer while
// its payload is on the wire: the transfer must return context.Canceled,
// destroy the poisoned channel, drain its pages back to the pool and leave
// the target's allocator untouched — run twice, the second run against the
// first's steady state.
func TestCancelMidTransferConservesBaselines(t *testing.T) {
	p := roadrunner.New(roadrunner.WithNodes("edge", "cloud"))
	defer p.Close()
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "src", Node: "edge"})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := p.Deploy(roadrunner.FunctionSpec{Name: "dst", Node: "cloud"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 256 << 10
	if err := src.Produce(n); err != nil {
		t.Fatal(err)
	}

	nodes := []string{"edge", "cloud"}
	cancelled := func() {
		ctx, cancel := context.WithCancel(context.Background())
		_, _, err := p.TransferCtx(ctx, src, dst, roadrunner.TestingWithGates(cancel))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled transfer = %v, want context.Canceled", err)
		}
	}
	cancelled() // absorb warm-up (none survives: the poisoned channel dies)
	base := snapshotBaselines(t, p, nodes, src, dst)
	cancelled()
	assertBaselines(t, p, nodes, base, src, dst)

	// The plane recovers: the same pair transfers cleanly afterwards (the
	// allocator probes retargeted src's registered output, so produce anew).
	if err := src.Produce(n); err != nil {
		t.Fatal(err)
	}
	ref, rep, err := p.Transfer(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "network" {
		t.Fatalf("recovery mode = %q", rep.Mode)
	}
	sum, err := dst.Checksum(ref)
	if err != nil {
		t.Fatal(err)
	}
	if want := roadrunner.ExpectedChecksum(n); sum != want {
		t.Fatalf("recovery checksum = %#x, want %#x", sum, want)
	}
}

// TestCancelMidChainReleasesInteriorRefs cancels a 5-hop chain while hop 3
// is on the wire: the chain must return context.Canceled naming hop 3, free
// every pinned interior ref (the head's produce and hops 1-2's deliveries —
// proven by the allocator probes) and conserve FD/page-pool/channel-cache
// baselines exactly.
func TestCancelMidChainReleasesInteriorRefs(t *testing.T) {
	p := roadrunner.New(roadrunner.WithNodes("edge", "cloud"))
	defer p.Close()
	// Placement e,e,c,e,c,e: hop 1 kernel, hops 2-5 network, so hop 3
	// (f2->f3) crosses the wire.
	nodes := []string{"edge", "edge", "cloud", "edge", "cloud", "edge"}
	fns := make([]*roadrunner.Function, len(nodes))
	for i, node := range nodes {
		var err error
		fns[i], err = p.Deploy(roadrunner.FunctionSpec{Name: "f" + string(rune('0'+i)), Node: node})
		if err != nil {
			t.Fatal(err)
		}
	}

	const n = 64 << 10
	cancelled := func() {
		ctx, cancel := context.WithCancel(context.Background())
		var ingresses atomic.Int64
		gate := func() {
			if ingresses.Add(1) == 3 { // hops 1 and 2 landed; hop 3 is on the wire
				cancel()
			}
		}
		_, _, err := p.ChainWithCtx(ctx, n, []roadrunner.TransferOption{roadrunner.TestingWithGates(gate)}, fns...)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled chain = %v, want context.Canceled", err)
		}
		if !strings.Contains(err.Error(), "hop 3/5") {
			t.Fatalf("cancelled chain error %q does not name hop 3/5", err)
		}
	}
	cancelled()
	platformNodes := []string{"edge", "cloud"}
	base := snapshotBaselines(t, p, platformNodes, fns...)
	cancelled()
	assertBaselines(t, p, platformNodes, base, fns...)

	// The chain recovers end to end.
	ref, rep, err := p.Chain(n, fns...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes != int64(5*n) {
		t.Fatalf("recovery chain bytes = %d, want %d", rep.Bytes, 5*n)
	}
	sum, err := fns[len(fns)-1].Checksum(ref)
	if err != nil {
		t.Fatal(err)
	}
	if want := roadrunner.ExpectedChecksum(n); sum != want {
		t.Fatalf("recovery checksum = %#x, want %#x", sum, want)
	}
}

// TestCancelMidFanoutConservesBaselines cancels a fan-out while all three
// deliveries are on the wire: the fan-out must return context.Canceled,
// release the produced source region, and conserve every baseline.
func TestCancelMidFanoutConservesBaselines(t *testing.T) {
	p := roadrunner.New(roadrunner.WithNodes("edge", "cloud"), roadrunner.WithWorkers(4))
	defer p.Close()
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "src", Node: "edge"})
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]*roadrunner.Function, 3)
	for i := range targets {
		if targets[i], err = p.Deploy(roadrunner.FunctionSpec{Name: "t" + string(rune('0'+i)), Node: "cloud"}); err != nil {
			t.Fatal(err)
		}
	}

	const n = 64 << 10
	all := append([]*roadrunner.Function{src}, targets...)
	cancelled := func() {
		ctx, cancel := context.WithCancel(context.Background())
		var once atomic.Bool
		gate := func() {
			if once.CompareAndSwap(false, true) {
				cancel()
			}
		}
		_, _, err := p.FanoutCtx(ctx, src, targets, n, roadrunner.TestingWithGates(gate))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled fanout = %v, want context.Canceled", err)
		}
	}
	cancelled()
	nodes := []string{"edge", "cloud"}
	base := snapshotBaselines(t, p, nodes, all...)
	cancelled()
	assertBaselines(t, p, nodes, base, all...)

	// The fan-out recovers, now returning per-target refs.
	refs, reports, err := p.Fanout(src, targets, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != len(targets) || len(reports) != len(targets) {
		t.Fatalf("recovery fanout: %d refs / %d reports, want %d", len(refs), len(reports), len(targets))
	}
	for i := range targets {
		sum, err := targets[i].Checksum(refs[i])
		if err != nil {
			t.Fatal(err)
		}
		if want := roadrunner.ExpectedChecksum(n); sum != want {
			t.Fatalf("target %d: checksum %#x, want %#x", i, sum, want)
		}
	}
}

// TestSubmitAfterCloseReturnsErrClosed: the Plan plane respects teardown
// like every other entry point.
func TestSubmitAfterCloseReturnsErrClosed(t *testing.T) {
	p := roadrunner.New(roadrunner.WithNodes("edge", "cloud"))
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "src", Node: "edge"})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := p.Deploy(roadrunner.FunctionSpec{Name: "dst", Node: "cloud"})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()

	pl := roadrunner.NewPlan()
	pl.Xfer(src, dst)
	if _, err := p.Submit(context.Background(), pl); !errors.Is(err, roadrunner.ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	// The ...Ctx forms answer ErrClosed too.
	if _, _, err := p.TransferCtx(context.Background(), src, dst); !errors.Is(err, roadrunner.ErrClosed) {
		t.Fatalf("TransferCtx after Close = %v, want ErrClosed", err)
	}
	if _, err := p.InvokeCtx(context.Background(), src, dst, 1024); !errors.Is(err, roadrunner.ErrClosed) {
		t.Fatalf("InvokeCtx after Close = %v, want ErrClosed", err)
	}
	if _, _, err := p.ChainCtx(context.Background(), 1024, src, dst); !errors.Is(err, roadrunner.ErrClosed) {
		t.Fatalf("ChainCtx after Close = %v, want ErrClosed", err)
	}
	if _, _, err := p.MulticastCtx(context.Background(), src, []*roadrunner.Function{dst}); !errors.Is(err, roadrunner.ErrClosed) {
		t.Fatalf("MulticastCtx after Close = %v, want ErrClosed", err)
	}
	if _, _, err := p.FanoutCtx(context.Background(), src, []*roadrunner.Function{dst}, 1024); !errors.Is(err, roadrunner.ErrClosed) {
		t.Fatalf("FanoutCtx after Close = %v, want ErrClosed", err)
	}
	if _, _, err := p.MulticastAsync(src, []*roadrunner.Function{dst}).Wait(); !errors.Is(err, roadrunner.ErrClosed) {
		t.Fatalf("MulticastAsync after Close = %v, want ErrClosed", err)
	}
}

// TestDeadlineExpiredBeforeSubmitCancelsImmediately: an already-expired
// deadline aborts at admission with DeadlineExceeded, before any bytes move.
func TestDeadlineExpiredBeforeSubmitCancelsImmediately(t *testing.T) {
	p := roadrunner.New(roadrunner.WithNodes("edge", "cloud"))
	defer p.Close()
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "src", Node: "edge"})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := p.Deploy(roadrunner.FunctionSpec{Name: "dst", Node: "cloud"})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Produce(1024); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	if _, _, err := p.TransferCtx(ctx, src, dst); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired transfer = %v, want DeadlineExceeded", err)
	}
}

// pollCtx is a context.Context that cancels itself on its k-th
// cancellation poll (each ctxErr in the engine calls Done() once). Sweeping
// k walks the cancellation through every polling site the data plane has —
// pipeline entry, stage boundary, and each chunk of the stage loops,
// including the post-allocation drain polls — without any timing
// dependence.
type pollCtx struct {
	k      int64
	calls  atomic.Int64
	closed chan struct{}
	open   chan struct{}
}

func newPollCtx(k int64) *pollCtx {
	c := &pollCtx{k: k, closed: make(chan struct{}), open: make(chan struct{})}
	close(c.closed)
	return c
}

func (c *pollCtx) Done() <-chan struct{} {
	if c.calls.Add(1) >= c.k {
		return c.closed
	}
	return c.open
}

func (c *pollCtx) Err() error {
	if c.calls.Load() >= c.k {
		return context.Canceled
	}
	return nil
}

func (c *pollCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *pollCtx) Value(any) any               { return nil }

// TestCancelAtEveryPollSiteConservesBaselines sweeps a cancellation through
// every polling site of the kernel and network transfer paths (small hose →
// multi-chunk loops): whichever site trips, the transfer must return
// context.Canceled and every baseline — FDs, page pool, channel-cache
// active count, residency, and the target's bump allocator (the
// post-allocation drain polls deallocate on abort) — must hold exactly.
// The sweep ends at the first k large enough that the transfer wins.
func TestCancelAtEveryPollSiteConservesBaselines(t *testing.T) {
	for _, tc := range []struct {
		name     string
		dstNode  string
		wantMode string
	}{
		{"kernel", "edge", "kernel"},
		{"network", "cloud", "network"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := roadrunner.New(roadrunner.WithNodes("edge", "cloud"), roadrunner.WithDataHoseSize(16<<10))
			defer p.Close()
			src, err := p.Deploy(roadrunner.FunctionSpec{Name: "src", Node: "edge"})
			if err != nil {
				t.Fatal(err)
			}
			dst, err := p.Deploy(roadrunner.FunctionSpec{Name: "dst", Node: tc.dstNode})
			if err != nil {
				t.Fatal(err)
			}
			const n = 96 << 10 // 6 hose chunks
			// Pre-grow both guests' linear memories: wasm memories never
			// shrink, so the sweep's first produce/delivery allocation
			// would otherwise grow them mid-iteration and skew the
			// resident baseline.
			for _, f := range []*roadrunner.Function{src, dst} {
				if err := f.Produce(n); err != nil {
					t.Fatal(err)
				}
				out, err := f.Output()
				if err != nil {
					t.Fatal(err)
				}
				if err := f.ActiveInstance().Release(out); err != nil {
					t.Fatal(err)
				}
			}
			nodes := []string{"edge", "cloud"}

			completed := false
			for k := int64(1); k <= 64; k++ {
				// Baseline first, then the fresh output (the snapshot's
				// probes would otherwise retarget it); the produce is
				// released again before the baseline comparison.
				base := snapshotBaselines(t, p, nodes, src, dst)
				if err := src.Produce(n); err != nil {
					t.Fatal(err)
				}
				ref, rep, err := p.TransferCtx(newPollCtx(k), src, dst)
				if err == nil {
					// k exceeded the path's poll count: the transfer won the
					// race. Verify it end to end and end the sweep.
					if rep.Mode != tc.wantMode {
						t.Fatalf("k=%d: mode = %q, want %q", k, rep.Mode, tc.wantMode)
					}
					sum, err := dst.Checksum(ref)
					if err != nil {
						t.Fatal(err)
					}
					if want := roadrunner.ExpectedChecksum(n); sum != want {
						t.Fatalf("k=%d: checksum %#x, want %#x", k, sum, want)
					}
					completed = true
					break
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("k=%d: err = %v, want context.Canceled", k, err)
				}
				// The fresh produce is this iteration's only intended
				// allocation: hand it back so the comparison sees exactly
				// what the cancelled transfer left behind.
				if out, oerr := src.Output(); oerr == nil {
					if rerr := src.ActiveInstance().Release(out); rerr != nil {
						t.Fatalf("k=%d: release produce: %v", k, rerr)
					}
				}
				assertBaselines(t, p, nodes, base, src, dst)
			}
			if !completed {
				t.Fatal("sweep never reached a successful transfer; poll count grew past 64?")
			}
		})
	}
}
