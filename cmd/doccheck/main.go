// Command doccheck is the vet-level gate of the godoc contract: every
// exported declaration of the root roadrunner package — functions, methods,
// types, and each exported name inside var/const blocks — must carry a doc
// comment. The public API is the paper's interface to its readers; an
// undocumented export fails CI here, with the declaration named.
//
// A grouped var/const block is covered by the block's own doc comment only
// if every spec inside is unexported or individually documented; exported
// specs need their own comment (or a same-line trailing comment), matching
// how godoc renders them.
//
// Usage: doccheck [package-dir] (default ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	violations, err := check(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "doccheck: exported declarations without doc comments:")
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("doccheck: every exported declaration is documented")
}

func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var violations []string
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				violations = append(violations, checkDecl(fset, decl)...)
			}
		}
	}
	sort.Strings(violations)
	return violations, nil
}

// checkDecl reports the undocumented exported names one top-level
// declaration introduces.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s is exported but has no doc comment", p.Filename, p.Line, what))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			report(d.Pos(), signature(d))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), "type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				// Inside a grouped block each exported spec needs its own
				// comment; an ungrouped decl's doc covers its one spec.
				covered := s.Doc != nil || s.Comment != nil || (!d.Lparen.IsValid() && d.Doc != nil)
				if covered {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						report(name.Pos(), kindWord(d.Tok)+" "+name.Name)
					}
				}
			}
		}
	}
	return out
}

// signature names a function or method the way godoc lists it.
func signature(d *ast.FuncDecl) string {
	if d.Recv == nil {
		return "func " + d.Name.Name
	}
	t := d.Recv.List[0].Type
	recv := ""
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
		recv = "*"
	}
	if ident, ok := t.(*ast.Ident); ok {
		recv += ident.Name
	}
	return fmt.Sprintf("(%s).%s", recv, d.Name.Name)
}

// kindWord names a value declaration's kind ("var", "const").
func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
