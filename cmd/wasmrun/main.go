// Command wasmrun inspects and executes WebAssembly modules under the
// Roadrunner shim ABI using the repo's pure-Go runtime.
//
// Usage:
//
//	wasmrun -dump                        # write the canonical guest module to guest.wasm
//	wasmrun module.wasm                  # list exports
//	wasmrun module.wasm hello            # call an export
//	wasmrun module.wasm consume 1024 64  # call with integer arguments
//	wasmrun -guest produce 4096          # run an export of the built-in guest
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/abi"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/guest"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/kernel"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasi"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/wasm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wasmrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wasmrun", flag.ContinueOnError)
	var (
		dumpFlag   = fs.Bool("dump", false, "write the canonical guest module to guest.wasm and exit")
		guestFlag  = fs.Bool("guest", false, "operate on the built-in guest module instead of a file")
		disasmFlag = fs.Bool("disasm", false, "print the module in WAT-like form and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()

	if *dumpFlag {
		if err := os.WriteFile("guest.wasm", guest.Module(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote guest.wasm (%d bytes)\n", len(guest.Module()))
		return nil
	}

	var bin []byte
	if *guestFlag {
		bin = guest.Module()
	} else {
		if len(rest) == 0 {
			return fmt.Errorf("usage: wasmrun [-guest|-dump] [module.wasm] [export args...]")
		}
		var err error
		if bin, err = os.ReadFile(rest[0]); err != nil {
			return err
		}
		rest = rest[1:]
	}

	m, err := wasm.Decode(bin)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	if *disasmFlag {
		text, err := wasm.Disassemble(m)
		if err != nil {
			return fmt.Errorf("disassemble: %w", err)
		}
		fmt.Print(text)
		return nil
	}

	// Host environment: a scratch kernel process with WASI + shim imports.
	k := kernel.New("wasmrun")
	proc := k.NewProc("module", nil)
	defer proc.CloseAll()
	host := wasi.NewHost(proc, nil)
	imports := wasm.Imports{}
	host.AddImports(imports)
	imports.Add(abi.ImportModule, abi.ImportSendToHost, abi.SendToHostImport(func(ptr, n uint32) {
		fmt.Printf("send_to_host(ptr=%d, len=%d)\n", ptr, n)
	}))

	inst, err := wasm.Instantiate(m, imports, nil)
	if err != nil {
		return fmt.Errorf("instantiate: %w", err)
	}

	if len(rest) == 0 {
		return listExports(m, inst)
	}

	export := rest[0]
	callArgs := make([]uint64, 0, len(rest)-1)
	for _, a := range rest[1:] {
		v, err := strconv.ParseUint(a, 0, 64)
		if err != nil {
			return fmt.Errorf("argument %q: %w", a, err)
		}
		callArgs = append(callArgs, v)
	}
	results, err := inst.Call(export, callArgs...)
	if err != nil {
		return fmt.Errorf("call %s: %w", export, err)
	}
	for i, r := range results {
		fmt.Printf("result[%d] = %d (0x%x)\n", i, r, r)
	}
	if len(results) == 0 {
		fmt.Println("ok (no results)")
	}
	return nil
}

func listExports(m *wasm.Module, inst *wasm.Instance) error {
	fmt.Printf("module: %d types, %d imports, %d functions, %d exports\n",
		len(m.Types), len(m.Imports), len(m.FuncTypes), len(m.Exports))
	for _, imp := range m.Imports {
		fmt.Printf("  import %s.%s\n", imp.Module, imp.Name)
	}
	for _, e := range inst.Exports() {
		switch e.Kind {
		case wasm.ExternFunc:
			ft, err := m.FuncType(e.Index)
			if err != nil {
				return err
			}
			fmt.Printf("  export func %s%v -> %v\n", e.Name, ft.Params, ft.Results)
		case wasm.ExternMemory:
			fmt.Printf("  export memory %s (%d bytes)\n", e.Name, inst.Memory().Size())
		case wasm.ExternGlobal:
			fmt.Printf("  export global %s\n", e.Name)
		}
	}
	return nil
}
