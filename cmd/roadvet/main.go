// Command roadvet is the repository's static-analysis gate: a suite of
// go/analysis passes that prove the data-plane's resource invariants,
// each distilled from a bug an earlier PR shipped or nearly shipped.
//
// The resource analyzers are interprocedural: a bottom-up pass over the
// call graph computes per-function obligation summaries (what each
// function consumes, returns, polls, or balances), so a release that
// lives in a helper still credits the caller's obligation and a lock
// taken in the caller still guards the callee's field access.
//
//   - regionrelease: every region a View.Allocate returns reaches a
//     Deallocate (or the caller, or a consuming helper) on every path —
//     the ingress leak class.
//   - gaugebalance: every invoker-plane State.Enter has a State.Exit on
//     all paths of its function — the phantom in-flight load bug.
//     Enter/Exit pairs transfer through unexported helpers.
//   - lockorder: nested Shim.mu acquisitions must go through the ordered
//     lockShims helper — the AB/BA transfer deadlock.
//   - lockguard: every access to a field declared `//roadvet:guards mu`
//     happens with mu provably held — including lock-in-caller,
//     access-in-callee splits, whose entry lock sets are inferred from
//     call sites. RWMutex reads accept RLock; writes require Lock.
//   - poolreturn: every object taken from a sync.Pool recycler reaches
//     its Put (or a consumer that puts it) on every path — the hot-path
//     recycle leak class.
//   - refbalance: every pagebuf page reference acquired from a producer
//     (Retain, Ring.Clone/Pop, pool Copy/Gift, ReadRefs) reaches its
//     Release/ReleaseAll — or a consumer that owns it — on every path;
//     one leaking path under a tee group pins a page per fan-out target.
//   - ctxpoll: hose-chunk syscall loops poll the context per chunk
//     (directly or through a helper that provably polls), so
//     cancellation lands mid-stream.
//   - errclass: every exported kernel error is classified as instance
//     fault (retryable) or caller fault (terminal) in the retry layer.
//   - ctxcheck, doccheck: the context-first API and godoc contracts,
//     ported from their former standalone commands.
//
// roadvet also enforces gofmt on every file it loads, so one invocation
// replaces the previous vet+gofmt+ctxcheck+doccheck lint pipeline.
//
// # Annotations
//
// Guarded-field declarations sit on the struct field they protect:
//
//	//roadvet:guards <mutexField>
//
// Intentional exceptions are annotated in the source:
//
//	//roadvet:ignore <analyzer> <reason>     suppress one finding
//	//roadvet:unguarded <reason>             exempt one guarded access
//
// The reason is mandatory, and an annotation that suppresses nothing is
// itself an error — suppressions cannot outlive their justification.
//
// # Flags
//
//	-json <path|->        also write findings as JSON (for CI artifacts)
//	-budget <baseline>    fail if wall-clock exceeds 2x the committed
//	                      baseline (ROADVET_BASELINE.json)
//	-record <baseline>    write the measured wall-clock as the new baseline
//
// Usage: roadvet [flags] [packages] (default "./...")
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"golang.org/x/tools/go/analysis"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/ctxcheck"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/ctxpoll"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/doccheck"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/driver"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/errclass"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/gaugebalance"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/lockguard"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/lockorder"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/poolreturn"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/refbalance"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/regionrelease"
)

// suite is every analyzer the gate runs, in report order.
var suite = []*analysis.Analyzer{
	regionrelease.Analyzer,
	poolreturn.Analyzer,
	refbalance.Analyzer,
	gaugebalance.Analyzer,
	lockorder.Analyzer,
	lockguard.Analyzer,
	ctxpoll.Analyzer,
	errclass.Analyzer,
	ctxcheck.Analyzer,
	doccheck.Analyzer,
}

// budgetFactor is the slack over the committed baseline before the
// wall-clock budget check fails: interprocedural summaries must stay
// cheap enough to run on every push.
const budgetFactor = 2.0

// jsonFinding is one diagnostic in the -json artifact.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Stale    bool   `json:"stale,omitempty"`
}

// jsonReport is the -json artifact schema.
type jsonReport struct {
	Findings   []jsonFinding `json:"findings"`
	Suppressed int           `json:"suppressed"`
	Seconds    float64       `json:"seconds"`
}

// baseline is the ROADVET_BASELINE.json schema for -budget / -record.
type baseline struct {
	Seconds float64 `json:"seconds"`
}

func usage() {
	fmt.Fprint(flag.CommandLine.Output(), `roadvet: the data-plane invariant gate.

Usage: roadvet [flags] [packages]   (default "./...")

Annotations recognised in source:
  //roadvet:guards <mutexField>   on a struct field: every access must
                                  hold the named sync.Mutex/RWMutex,
                                  proved interprocedurally (lockguard).
  //roadvet:unguarded <reason>    exempt the access on this or the next
                                  line from lockguard; reason mandatory,
                                  stale hatches are themselves findings.
  //roadvet:ignore <analyzer> <reason>
                                  suppress one finding on this or the
                                  next line; reason mandatory, stale
                                  ignores are themselves findings.

Flags:
`)
	flag.PrintDefaults()
}

func toJSON(fs []driver.Finding, stale bool) []jsonFinding {
	out := make([]jsonFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     filepath.ToSlash(f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
			Stale:    stale,
		})
	}
	return out
}

func writeJSON(path string, rep jsonReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, b, 0o644)
}

func main() {
	jsonPath := flag.String("json", "", "also write findings as JSON to `path` (- for stdout)")
	budgetPath := flag.String("budget", "", "fail if wall-clock exceeds 2x the baseline in `file`")
	recordPath := flag.String("record", "", "write the measured wall-clock baseline to `file`")
	flag.Usage = usage
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	start := time.Now()
	res, err := driver.Vet(suite, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roadvet:", err)
		os.Exit(2)
	}
	elapsed := time.Since(start).Seconds()

	bad := false
	for _, f := range res.Findings {
		bad = true
		fmt.Fprintln(os.Stderr, f)
	}
	for _, f := range res.Stale {
		bad = true
		fmt.Fprintln(os.Stderr, f)
	}

	if *jsonPath != "" {
		rep := jsonReport{
			Findings:   append(toJSON(res.Findings, false), toJSON(res.Stale, true)...),
			Suppressed: res.Suppressed,
			Seconds:    elapsed,
		}
		if err := writeJSON(*jsonPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "roadvet: write json:", err)
			os.Exit(2)
		}
	}
	if *recordPath != "" {
		b, err := json.Marshal(baseline{Seconds: elapsed})
		if err == nil {
			err = os.WriteFile(*recordPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadvet: record baseline:", err)
			os.Exit(2)
		}
	}
	if *budgetPath != "" {
		b, err := os.ReadFile(*budgetPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "roadvet: budget:", err)
			os.Exit(2)
		}
		var base baseline
		if err := json.Unmarshal(b, &base); err != nil || base.Seconds <= 0 {
			fmt.Fprintf(os.Stderr, "roadvet: budget: %s: bad baseline\n", *budgetPath)
			os.Exit(2)
		}
		limit := base.Seconds * budgetFactor
		if elapsed > limit {
			fmt.Fprintf(os.Stderr,
				"roadvet: wall-clock budget exceeded: %.2fs > %.2fs (%gx baseline %.2fs); "+
					"either make the analysis cheaper or re-record %s with -record\n",
				elapsed, limit, budgetFactor, base.Seconds, *budgetPath)
			bad = true
		}
	}

	if bad {
		os.Exit(1)
	}
	if res.Suppressed > 0 {
		fmt.Printf("roadvet: ok (%d justified suppression(s), %.2fs)\n", res.Suppressed, elapsed)
	} else {
		fmt.Printf("roadvet: ok (%.2fs)\n", elapsed)
	}
}
