// Command roadvet is the repository's static-analysis gate: a suite of
// go/analysis passes that prove the data-plane's resource invariants,
// each distilled from a bug an earlier PR shipped or nearly shipped.
//
//   - regionrelease: every region a View.Allocate returns reaches a
//     Deallocate (or the caller) on every path — the ingress leak class.
//   - gaugebalance: every invoker-plane State.Enter has a State.Exit on
//     all paths of its function — the phantom in-flight load bug.
//   - lockorder: nested Shim.mu acquisitions must go through the ordered
//     lockShims helper — the AB/BA transfer deadlock.
//   - poolreturn: every object taken from a sync.Pool recycler reaches
//     its Put (or a consumer that puts it) on every path — the hot-path
//     recycle leak class.
//   - refbalance: every pagebuf page reference acquired from a producer
//     (Retain, Ring.Clone/Pop, pool Copy/Gift, ReadRefs) reaches its
//     Release/ReleaseAll — or a consumer that owns it — on every path;
//     one leaking path under a tee group pins a page per fan-out target.
//   - ctxpoll: hose-chunk syscall loops poll the context per chunk, so
//     cancellation lands mid-stream.
//   - errclass: every exported kernel error is classified as instance
//     fault (retryable) or caller fault (terminal) in the retry layer.
//   - ctxcheck, doccheck: the context-first API and godoc contracts,
//     ported from their former standalone commands.
//
// roadvet also enforces gofmt on every file it loads, so one invocation
// replaces the previous vet+gofmt+ctxcheck+doccheck lint pipeline.
//
// Intentional exceptions are annotated in the source:
//
//	//roadvet:ignore <analyzer> <reason>
//
// The reason is mandatory, and an annotation that suppresses nothing is
// itself an error — suppressions cannot outlive their justification.
//
// Usage: roadvet [packages] (default "./...")
package main

import (
	"fmt"
	"os"

	"golang.org/x/tools/go/analysis"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/ctxcheck"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/ctxpoll"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/doccheck"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/driver"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/errclass"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/gaugebalance"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/lockorder"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/poolreturn"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/refbalance"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/analysis/regionrelease"
)

// suite is every analyzer the gate runs, in report order.
var suite = []*analysis.Analyzer{
	regionrelease.Analyzer,
	poolreturn.Analyzer,
	refbalance.Analyzer,
	gaugebalance.Analyzer,
	lockorder.Analyzer,
	ctxpoll.Analyzer,
	errclass.Analyzer,
	ctxcheck.Analyzer,
	doccheck.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := driver.Vet(suite, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roadvet:", err)
		os.Exit(2)
	}
	bad := false
	for _, f := range res.Findings {
		bad = true
		fmt.Fprintln(os.Stderr, f)
	}
	for _, f := range res.Stale {
		bad = true
		fmt.Fprintln(os.Stderr, f)
	}
	if bad {
		os.Exit(1)
	}
	if res.Suppressed > 0 {
		fmt.Printf("roadvet: ok (%d justified suppression(s))\n", res.Suppressed)
	} else {
		fmt.Println("roadvet: ok")
	}
}
