// Command roadrunner-bench regenerates the paper's evaluation tables and
// figures (Fig. 2, 6, 7, 8, 9, 10) on the simulated testbed.
//
// Usage:
//
//	roadrunner-bench                     # every experiment, scaled axes
//	roadrunner-bench -exp fig7,fig8      # selected experiments
//	roadrunner-bench -full               # the paper's axes (1–500 MB, degree 100)
//	roadrunner-bench -sizes 1,10,50      # custom payload sweep (MB)
//	roadrunner-bench -degrees 1,10,100   # custom fan-out degrees
//	roadrunner-bench -list               # list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "roadrunner-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("roadrunner-bench", flag.ContinueOnError)
	var (
		expFlag     = fs.String("exp", "", "comma-separated experiment IDs (default: all)")
		fullFlag    = fs.Bool("full", false, "use the paper's full axes (slow: minutes)")
		sizesFlag   = fs.String("sizes", "", "payload sizes in MB for fig7/fig8 sweeps, e.g. 1,10,50")
		degreesFlag = fs.String("degrees", "", "fan-out degrees for fig9/fig10, e.g. 1,10,100")
		fanoutMB    = fs.Int("fanout-mb", 0, "per-transfer payload (MB) in fan-out experiments")
		fig6MB      = fs.Int("fig6-mb", 0, "payload (MB) for the fig6 breakdown")
		runsFlag    = fs.Int("runs", 0, "repetitions per data point (mean reported)")
		listFlag    = fs.Bool("list", false, "list experiment IDs and exit")
		jsonFlag    = fs.Bool("json", false, "emit one schema-versioned JSON document instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listFlag {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	opts := experiments.Options{}
	if *fullFlag {
		opts = experiments.Full()
	}
	var err error
	if opts.SizesMB, err = overrideInts(*sizesFlag, opts.SizesMB); err != nil {
		return fmt.Errorf("-sizes: %w", err)
	}
	if opts.FanoutDegrees, err = overrideInts(*degreesFlag, opts.FanoutDegrees); err != nil {
		return fmt.Errorf("-degrees: %w", err)
	}
	if *fanoutMB > 0 {
		opts.FanoutPayloadMB = *fanoutMB
	}
	if *fig6MB > 0 {
		opts.Fig6PayloadMB = *fig6MB
	}
	if *runsFlag > 0 {
		opts.Runs = *runsFlag
	}

	ids := experiments.IDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
	}
	var results []*experiments.Result
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := experiments.Registry[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		res, err := runner(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *jsonFlag {
			results = append(results, res)
			continue
		}
		res.Print(os.Stdout)
	}
	if *jsonFlag {
		doc := struct {
			SchemaVersion int                   `json:"schema_version"`
			Results       []*experiments.Result `json:"results"`
		}{experiments.SchemaVersion, results}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	return nil
}

func overrideInts(flagValue string, def []int) ([]int, error) {
	if flagValue == "" {
		return def, nil
	}
	parts := strings.Split(flagValue, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
