// Command roadrunner-load drives concurrent workflow load through the
// simulated Roadrunner deployment and reports aggregate throughput and
// latency percentiles as JSON (schema_version-tagged, diffable across PRs).
//
// Usage:
//
//	roadrunner-load                          # closed loop: 8 workflows, 32 executions
//	roadrunner-load -workflows 16 -requests 256
//	roadrunner-load -mode network -payload 1048576
//	roadrunner-load -mode chain -hops 6      # chain-depth scaling scenario
//	roadrunner-load -mode chain -phase-locked # pre-pipeline ablation regime
//	roadrunner-load -replicas 4              # 4-instance pools per function, locality-routed
//	roadrunner-load -replicas 4 -placement round-robin # placement-oblivious ablation
//	roadrunner-load -mode plan               # a Plan/Submit DAG per iteration
//	roadrunner-load -mode fanout -targets 8  # one shared-egress fan-out to 8 same-node sandboxes per iteration
//	roadrunner-load -deadline 5ms            # per-operation ctx timeout ("cancelled" counter)
//	roadrunner-load -replicas 4 -kills 1     # degrade-under-kill: crash 1 replica per pool mid-load
//	roadrunner-load -rate 500 -duration 2s   # open loop: 500 exec/s offered for 2s
//	roadrunner-load -profile ./prof          # cpu.pprof + heap.pprof around the measured window
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "roadrunner-load:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("roadrunner-load", flag.ContinueOnError)
	var (
		workflows = fs.Int("workflows", 8, "independent workflow instances")
		hops      = fs.Int("hops", 0, "transfers per execution (default: 3 mixed, 2 single-mode)")
		payload   = fs.Int("payload", 64<<10, "payload bytes produced per execution")
		conc      = fs.Int("concurrency", 0, "max in-flight executions (default: min(workflows, GOMAXPROCS))")
		requests  = fs.Int("requests", 0, "closed-loop total executions (default: 4×workflows)")
		rate      = fs.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
		duration  = fs.Duration("duration", time.Second, "open-loop offered-load window")
		mode      = fs.String("mode", workload.ModeMixed, "transfer mode: mixed, user, kernel, network, chain, plan or fanout")
		targets   = fs.Int("targets", 0, "fanout-mode deliveries per execution (default 4; requires -mode fanout)")
		verify    = fs.Bool("verify", true, "checksum every final delivery")
		cold      = fs.Bool("cold-channels", false, "disable the channel cache: per-call hose setup/teardown (cold regime)")
		locked    = fs.Bool("phase-locked", false, "run transfers in the phase-locked (pre-pipeline) regime: both VM locks per hop, no stage overlap")
		replicas  = fs.Int("replicas", 1, "warm instance-pool size per function, spread across both nodes")
		placement = fs.String("placement", "locality", "invoker-plane placement policy: locality, least-loaded or round-robin")
		deadline  = fs.Duration("deadline", 0, "per-operation context timeout (0 = none); tripped executions count as cancelled")
		kills     = fs.Int("kills", 0, "replicas crashed mid-load per function pool (requires -replicas > kills)")
		profile   = fs.String("profile", "", "write cpu.pprof and heap.pprof into this directory, bracketing the measured window")
		compact   = fs.Bool("compact", false, "single-line JSON output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := workload.Run(workload.Config{
		Workflows:    *workflows,
		Hops:         *hops,
		PayloadBytes: *payload,
		Concurrency:  *conc,
		Requests:     *requests,
		RatePerSec:   *rate,
		Duration:     *duration,
		Mode:         *mode,
		Targets:      *targets,
		Verify:       *verify,
		ColdChannels: *cold,
		PhaseLocked:  *locked,
		Replicas:     *replicas,
		Placement:    *placement,
		Deadline:     *deadline,
		Kills:        *kills,
		ProfileDir:   *profile,
	})
	if err != nil {
		return err
	}

	enc := json.NewEncoder(os.Stdout)
	if !*compact {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(res)
}
