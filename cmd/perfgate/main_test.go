package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/experiments"
)

// benchDoc builds a hotpath-shaped document: sharded and single-queue
// throughput at worker counts 1, 2, 4, 8, scaled by perWorkerRPS (the
// machine-speed factor normalization must cancel).
func benchDoc(perWorkerRPS float64, shardedScale func(w float64) float64) *doc {
	r := &experiments.Result{ID: "hotpath", Mode: "sched-scaling", XLabel: "workers"}
	for _, w := range []float64{1, 2, 4, 8} {
		r.Points = append(r.Points,
			experiments.Point{System: experiments.SysSharded, X: w, RPS: perWorkerRPS * shardedScale(w)},
			experiments.Point{System: experiments.SysSingleQueue, X: w, RPS: perWorkerRPS * 1.2},
		)
	}
	return &doc{SchemaVersion: experiments.SchemaVersion, Results: []*experiments.Result{r}}
}

// linearScaling is a healthy sharded pool: throughput grows with workers.
func linearScaling(w float64) float64 { return w }

// serializedScaling is the deliberate regression: the sharded pool funnels
// through one queue again, so adding workers adds nothing.
func serializedScaling(float64) float64 { return 1.1 }

func TestGatePassesIdenticalRuns(t *testing.T) {
	var out bytes.Buffer
	if err := gate(&out, benchDoc(1000, linearScaling), benchDoc(1000, linearScaling), 0.35); err != nil {
		t.Fatalf("identical runs failed the gate: %v\n%s", err, out.String())
	}
}

func TestGateCancelsMachineSpeed(t *testing.T) {
	// Same scaling shape on a machine 3x faster than the baseline's: the
	// normalized trajectories match, so the gate must pass.
	var out bytes.Buffer
	if err := gate(&out, benchDoc(1000, linearScaling), benchDoc(3000, linearScaling), 0.35); err != nil {
		t.Fatalf("machine-speed difference failed the gate: %v\n%s", err, out.String())
	}
}

func TestGateFailsDeliberateRegression(t *testing.T) {
	// Re-serializing the sharded pool collapses its scaling curve; the
	// gate must fail and name the regressed points.
	var out bytes.Buffer
	err := gate(&out, benchDoc(1000, linearScaling), benchDoc(1000, serializedScaling), 0.35)
	if err == nil {
		t.Fatalf("re-serialized pool passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("diff output does not mark regressed points:\n%s", out.String())
	}
	if !strings.Contains(out.String(), experiments.SysSharded) {
		t.Fatalf("diff output does not name the regressed system:\n%s", out.String())
	}
}

func TestGateToleratesRunnerNoise(t *testing.T) {
	// 20% slower at every point is within the 35% band.
	noisy := func(w float64) float64 { return w * 0.8 }
	var out bytes.Buffer
	if err := gate(&out, benchDoc(1000, linearScaling), benchDoc(1000, noisy), 0.35); err != nil {
		t.Fatalf("in-band noise failed the gate: %v\n%s", err, out.String())
	}
}

func TestGateSchemaMismatch(t *testing.T) {
	base := benchDoc(1000, linearScaling)
	fresh := benchDoc(1000, linearScaling)
	fresh.SchemaVersion = base.SchemaVersion + 1
	if err := gate(&bytes.Buffer{}, base, fresh, 0.35); err == nil {
		t.Fatal("schema mismatch passed the gate")
	}
}

func TestGateComparesOnlyOverlappingPoints(t *testing.T) {
	// Baseline from a 1-core box (w=1 only) still gates a larger runner's
	// sweep on the shared point.
	small := benchDoc(1000, linearScaling)
	small.Results[0].Points = small.Results[0].Points[:2] // w=1 pair only
	var out bytes.Buffer
	if err := gate(&out, small, benchDoc(1000, linearScaling), 0.35); err != nil {
		t.Fatalf("partial-overlap comparison failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "workers=1") {
		t.Fatalf("expected the w=1 overlap to be compared:\n%s", out.String())
	}
	if strings.Contains(out.String(), "workers=8") {
		t.Fatalf("compared a point absent from the baseline:\n%s", out.String())
	}
}

func TestGateNoOverlapFails(t *testing.T) {
	base := benchDoc(1000, linearScaling)
	base.Results[0].ID = "other"
	if err := gate(&bytes.Buffer{}, base, benchDoc(1000, linearScaling), 0.35); err == nil {
		t.Fatal("documents with no shared results passed the gate")
	}
}

// writeDoc marshals d into dir/name and returns the path.
func writeDoc(t *testing.T, dir, name string, d *doc) string {
	t.Helper()
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadBaselinesMerges exercises the comma-separated baseline list: two
// committed files gate one fresh document, duplicate experiment IDs are
// rejected, and mixed schema versions are rejected.
func TestLoadBaselinesMerges(t *testing.T) {
	dir := t.TempDir()
	hot := benchDoc(1000, linearScaling)
	fan := benchDoc(1000, linearScaling)
	fan.Results[0].ID = "fanoutshare"
	p8 := writeDoc(t, dir, "BENCH_8.json", hot)
	p9 := writeDoc(t, dir, "BENCH_9.json", fan)

	merged, err := loadBaselines(p8 + "," + p9)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Results) != 2 {
		t.Fatalf("merged %d results, want 2", len(merged.Results))
	}
	fresh := benchDoc(1000, linearScaling)
	fresh.Results = append(fresh.Results, fan.Results[0])
	var out bytes.Buffer
	if err := gate(&out, merged, fresh, 0.35); err != nil {
		t.Fatalf("merged baselines failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "fanoutshare") || !strings.Contains(out.String(), "hotpath") {
		t.Fatalf("gate did not compare both baselines' results:\n%s", out.String())
	}

	if _, err := loadBaselines(p8 + "," + p8); err == nil {
		t.Fatal("duplicate experiment IDs across baselines must be rejected")
	}
	stale := benchDoc(1000, linearScaling)
	stale.SchemaVersion++
	stale.Results[0].ID = "fanoutshare"
	pStale := writeDoc(t, dir, "BENCH_stale.json", stale)
	if _, err := loadBaselines(p8 + "," + pStale); err == nil {
		t.Fatal("mixed baseline schema versions must be rejected")
	}
	if _, err := loadBaselines(" , "); err == nil {
		t.Fatal("an empty baseline list must be rejected")
	}
}
