// Command perfgate compares a fresh roadrunner-bench JSON document against
// one or more committed BENCH_*.json baselines and fails (exit 1) when the
// fresh run's throughput trajectory regresses beyond a tolerance band.
//
// Usage:
//
//	perfgate -baseline BENCH_8.json -fresh fresh.json [-tolerance 0.35]
//	roadrunner-bench -exp hotpath -json | perfgate -baseline BENCH_8.json
//	roadrunner-bench -exp hotpath,fanoutshare -json | perfgate -baseline BENCH_8.json,BENCH_9.json
//
// -baseline takes a comma-separated list; the documents are merged by
// result ID (each experiment may appear in exactly one baseline file), so
// one fresh sweep can be gated against the hot-path trajectory pinned by
// BENCH_8.json and the shared-egress fan-out trajectory pinned by
// BENCH_9.json in a single invocation.
//
// Machines differ, so absolute requests/second are not comparable between
// the box that committed the baseline and the CI runner re-measuring it.
// The gate therefore normalizes every point by its result's anchor — the
// mean RPS across systems at the result's smallest x — and compares the
// normalized trajectories. Machine speed divides out (both systems run on
// the same host in one document), while the shape regressions the gate
// exists for (the sharded scheduler re-serializing, a pooled path starting
// to allocate and falling off its scaling curve) survive normalization and
// trip the band. Only points present in both documents are compared, so a
// baseline recorded on a small machine still gates the overlapping worker
// counts of a larger runner's sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/polaris-slo-cloud/roadrunner-go/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(1)
	}
}

// doc is the roadrunner-bench -json document.
type doc struct {
	SchemaVersion int                   `json:"schema_version"`
	Results       []*experiments.Result `json:"results"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("perfgate", flag.ContinueOnError)
	var (
		baseFlag = fs.String("baseline", "", "committed BENCH_*.json baseline(s), comma-separated (required)")
		freshVal = fs.String("fresh", "", "fresh roadrunner-bench -json output (default: stdin)")
		tolFlag  = fs.Float64("tolerance", 0.35, "allowed fractional drop in normalized throughput before failing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseFlag == "" {
		return fmt.Errorf("-baseline is required")
	}
	if *tolFlag < 0 || *tolFlag >= 1 {
		return fmt.Errorf("-tolerance %g out of range [0, 1)", *tolFlag)
	}

	base, err := loadBaselines(*baseFlag)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var fresh *doc
	if *freshVal == "" {
		fresh, err = decodeDoc(stdin, "stdin")
	} else {
		fresh, err = loadDoc(*freshVal)
	}
	if err != nil {
		return fmt.Errorf("fresh: %w", err)
	}
	return gate(stdout, base, fresh, *tolFlag)
}

// loadBaselines reads each comma-separated BENCH_*.json path and merges
// them into one baseline document. All files must agree on the schema
// version, and no experiment ID may appear twice — each result keeps one
// authoritative committed trajectory.
func loadBaselines(paths string) (*doc, error) {
	var merged *doc
	seen := make(map[string]string)
	for _, path := range strings.Split(paths, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		d, err := loadDoc(path)
		if err != nil {
			return nil, err
		}
		for _, r := range d.Results {
			if prev, dup := seen[r.ID]; dup {
				return nil, fmt.Errorf("%s: result %q already pinned by %s", path, r.ID, prev)
			}
			seen[r.ID] = path
		}
		if merged == nil {
			merged = d
			continue
		}
		if d.SchemaVersion != merged.SchemaVersion {
			return nil, fmt.Errorf("%s: schema v%d differs from earlier baseline's v%d — regenerate the committed baselines together",
				path, d.SchemaVersion, merged.SchemaVersion)
		}
		merged.Results = append(merged.Results, d.Results...)
	}
	if merged == nil {
		return nil, fmt.Errorf("no baseline paths in %q", paths)
	}
	return merged, nil
}

func loadDoc(path string) (*doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decodeDoc(f, path)
}

func decodeDoc(r io.Reader, name string) (*doc, error) {
	var d doc
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if d.SchemaVersion == 0 || len(d.Results) == 0 {
		return nil, fmt.Errorf("%s: not a roadrunner-bench document (schema_version/results missing)", name)
	}
	return &d, nil
}

// pointKey identifies one measurement across documents.
type pointKey struct {
	system string
	x      float64
}

// normalized maps every point of one result to its RPS divided by the
// result's anchor (mean RPS at the smallest x). Returns nil when the
// result has no positive-throughput anchor to normalize by.
func normalized(r *experiments.Result) map[pointKey]float64 {
	minX, anchor, n := 0.0, 0.0, 0
	for i, p := range r.Points {
		if i == 0 || p.X < minX {
			minX = p.X
		}
	}
	for _, p := range r.Points {
		if p.X == minX && p.RPS > 0 {
			anchor += p.RPS
			n++
		}
	}
	if n == 0 {
		return nil
	}
	anchor /= float64(n)
	out := make(map[pointKey]float64, len(r.Points))
	for _, p := range r.Points {
		if p.RPS > 0 {
			out[pointKey{p.System, p.X}] = p.RPS / anchor
		}
	}
	return out
}

// gate compares every result present in both documents and reports each
// regression beyond the tolerance band; any regression fails the gate.
func gate(w io.Writer, base, fresh *doc, tol float64) error {
	if base.SchemaVersion != fresh.SchemaVersion {
		return fmt.Errorf("schema mismatch: baseline v%d, fresh v%d — regenerate the committed baseline",
			base.SchemaVersion, fresh.SchemaVersion)
	}
	baseByID := make(map[string]*experiments.Result, len(base.Results))
	for _, r := range base.Results {
		baseByID[r.ID] = r
	}

	compared, regressions := 0, 0
	for _, fr := range fresh.Results {
		br, ok := baseByID[fr.ID]
		if !ok {
			fmt.Fprintf(w, "perfgate: %s: no committed baseline, skipping\n", fr.ID)
			continue
		}
		bn, fn := normalized(br), normalized(fr)
		if bn == nil || fn == nil {
			return fmt.Errorf("%s: no positive-throughput anchor point", fr.ID)
		}
		keys := make([]pointKey, 0, len(fn))
		for k := range fn {
			if _, ok := bn[k]; ok {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].system != keys[j].system {
				return keys[i].system < keys[j].system
			}
			return keys[i].x < keys[j].x
		})
		if len(keys) == 0 {
			return fmt.Errorf("%s: no overlapping (system, %s) points between baseline and fresh run", fr.ID, fr.XLabel)
		}
		for _, k := range keys {
			compared++
			have, want := fn[k], bn[k]
			floor := want * (1 - tol)
			status := "ok"
			if have < floor {
				status = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "perfgate: %-10s %s @ %s=%g: normalized rps %.3f (baseline %.3f, floor %.3f) %s\n",
				fr.ID, k.system, fr.XLabel, k.x, have, want, floor, status)
		}
	}
	if compared == 0 {
		return fmt.Errorf("no comparable results between baseline and fresh documents")
	}
	if regressions > 0 {
		return fmt.Errorf("%d of %d point(s) regressed beyond the %.0f%% tolerance band", regressions, compared, tol*100)
	}
	fmt.Fprintf(w, "perfgate: %d point(s) within the %.0f%% band\n", compared, tol*100)
	return nil
}
