// Command ctxcheck is the vet-level gate of the context-first API contract:
// every public data-plane entry point of the root roadrunner package must
// be cancellable. Concretely, every exported method on *Platform whose
// parameters mention *Function (or []*Function) — the signature shape of a
// data-plane operation — must satisfy one of:
//
//   - it takes a context.Context itself (the ...Ctx forms, Submit), or
//   - an exported sibling named <Name>Ctx exists whose first parameter is a
//     context.Context, or
//   - its name ends in "Async": the asynchronous forms are cancelled
//     through their futures' WaitCtx and the Plan/Submit plane — which the
//     second rule enforces on every future type: any exported Wait method
//     without a ctx parameter requires a WaitCtx sibling.
//
// A new entry point that ships without a ctx story fails CI here, with the
// offending method named.
//
// Usage: ctxcheck [package-dir] (default ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	violations, err := check(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctxcheck:", err)
		os.Exit(2)
	}
	if len(violations) > 0 {
		fmt.Fprintln(os.Stderr, "ctxcheck: public API entry points lacking a ctx-taking form:")
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
		os.Exit(1)
	}
	fmt.Println("ctxcheck: every public data-plane entry point has a ctx-taking form")
}

// method describes one exported method of the package.
type method struct {
	recv     string // receiver base type name
	name     string
	takesCtx bool // any parameter is context.Context
	firstCtx bool // the FIRST parameter is context.Context
	touches  bool // parameters mention *Function or []*Function
}

func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var methods []method
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Recv == nil || !fn.Name.IsExported() {
					continue
				}
				methods = append(methods, describe(fn))
			}
		}
	}

	byRecv := make(map[string]map[string]method)
	for _, m := range methods {
		if byRecv[m.recv] == nil {
			byRecv[m.recv] = make(map[string]method)
		}
		byRecv[m.recv][m.name] = m
	}

	var violations []string
	for _, m := range methods {
		if m.recv == "Platform" && m.touches && !m.takesCtx &&
			!strings.HasSuffix(m.name, "Async") && !strings.HasSuffix(m.name, "Ctx") {
			sib, ok := byRecv[m.recv][m.name+"Ctx"]
			if !ok || !sib.firstCtx {
				violations = append(violations,
					fmt.Sprintf("(*%s).%s: data-plane entry point with no ctx parameter and no %sCtx sibling", m.recv, m.name, m.name))
			}
		}
		if m.name == "Wait" && !m.takesCtx {
			sib, ok := byRecv[m.recv]["WaitCtx"]
			if !ok || !sib.firstCtx {
				violations = append(violations,
					fmt.Sprintf("(*%s).Wait: blocking wait with no ctx parameter and no WaitCtx sibling", m.recv))
			}
		}
	}
	sort.Strings(violations)
	return violations, nil
}

func describe(fn *ast.FuncDecl) method {
	m := method{recv: recvName(fn), name: fn.Name.Name}
	for i, field := range fn.Type.Params.List {
		t := typeString(field.Type)
		if t == "context.Context" {
			m.takesCtx = true
			if i == 0 {
				m.firstCtx = true
			}
		}
		if strings.Contains(t, "*Function") {
			m.touches = true
		}
	}
	return m
}

// recvName extracts the receiver's base type name ("Platform" from
// "*Platform").
func recvName(fn *ast.FuncDecl) string {
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

// typeString renders the subset of type expressions the check cares about.
func typeString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeString(t.X)
	case *ast.ArrayType:
		return "[]" + typeString(t.Elt)
	case *ast.SelectorExpr:
		return typeString(t.X) + "." + t.Sel.Name
	case *ast.Ellipsis:
		return "..." + typeString(t.Elt)
	default:
		return ""
	}
}
