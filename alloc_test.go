package roadrunner_test

import (
	"context"
	"testing"

	roadrunner "github.com/polaris-slo-cloud/roadrunner-go"
	"github.com/polaris-slo-cloud/roadrunner-go/internal/sched"
)

// Allocation ceilings for the data plane's steady state, pinned by
// TestAllocCeilings. The transfer fast path is the zero-alloc invariant
// (DESIGN.md §10): a warm same-node kernel transfer allocates nothing in
// the layers this repo owns. Plan submission builds a DAG, a job and its
// result set, so it has a small fixed budget instead; pool submission is a
// ring-buffer enqueue and must stay allocation-free. Raising any of these
// numbers is a hot-path regression and needs DESIGN.md §10 justification
// in the same change.
const (
	allocCeilingWarmTransfer = 0
	allocCeilingPlanSubmit   = 20
	allocCeilingPoolSubmit   = 0
	// A warm same-node fan-out is one shared-egress multicast pass: the
	// per-operation slices (channels, drains, refs, reports, configs), one
	// drain goroutine per target and the gift-page headers of the tee pass.
	// Its budget is per operation, not per target — the shared pass is what
	// keeps it from scaling with N payload copies.
	allocCeilingWarmFanout = 120
)

// allocFanoutDegree sizes the fan-out ceiling probe: enough targets that a
// per-target O(N) payload-copy regression would blow the budget.
const allocFanoutDegree = 8

// allocBenchPayload keeps the ceiling measurements about per-operation
// bookkeeping, not payload size: one simulated kernel page.
const allocBenchPayload = 4 << 10

// buildWarmPair deploys two single-replica functions on one node, produces
// the source payload, and warms the kernel channel with one untimed
// transfer so the measured loop is pure steady state.
func buildWarmPair(tb testing.TB) (*roadrunner.Platform, *roadrunner.Function, *roadrunner.Function) {
	tb.Helper()
	p := roadrunner.New(roadrunner.WithNodes("node"))
	tb.Cleanup(p.Close)
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "a", Node: "node"})
	if err != nil {
		tb.Fatal(err)
	}
	dst, err := p.Deploy(roadrunner.FunctionSpec{Name: "b", Node: "node"})
	if err != nil {
		tb.Fatal(err)
	}
	if err := src.Produce(allocBenchPayload); err != nil {
		tb.Fatal(err)
	}
	ref, _, err := p.Transfer(src, dst)
	if err != nil {
		tb.Fatal(err)
	}
	if err := dst.Release(ref); err != nil {
		tb.Fatal(err)
	}
	return p, src, dst
}

// benchWarmKernelTransfer is the transfer fast path's allocation probe:
// warm channel, recycled pipeline state, pooled config — expected 0
// allocs/op.
func benchWarmKernelTransfer(b *testing.B) {
	p, src, dst := buildWarmPair(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, _, err := p.Transfer(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		if err := dst.Release(ref); err != nil {
			b.Fatal(err)
		}
	}
}

// buildWarmFanout deploys one source and allocFanoutDegree single-replica
// targets on one node and warms the socketpair channels with one untimed
// shared-egress fan-out.
func buildWarmFanout(tb testing.TB) (*roadrunner.Platform, *roadrunner.Function, []*roadrunner.Function) {
	tb.Helper()
	p := roadrunner.New(roadrunner.WithNodes("node"), roadrunner.WithWorkers(4))
	tb.Cleanup(p.Close)
	src, err := p.Deploy(roadrunner.FunctionSpec{Name: "src", Node: "node"})
	if err != nil {
		tb.Fatal(err)
	}
	targets := make([]*roadrunner.Function, allocFanoutDegree)
	for i := range targets {
		if targets[i], err = p.Deploy(roadrunner.FunctionSpec{Name: "t" + string(rune('0'+i)), Node: "node"}); err != nil {
			tb.Fatal(err)
		}
	}
	refs, _, err := p.Fanout(src, targets, allocBenchPayload)
	if err != nil {
		tb.Fatal(err)
	}
	for i := range targets {
		if err := targets[i].Release(refs[i]); err != nil {
			tb.Fatal(err)
		}
	}
	if out, err := src.Instance(0).Output(); err == nil {
		if err := src.Instance(0).Release(out); err != nil {
			tb.Fatal(err)
		}
	}
	return p, src, targets
}

// benchWarmFanout is the shared-egress fan-out's allocation probe: warm
// socketpair channels, one multicast tee group, fixed per-operation
// bookkeeping regardless of payload.
func benchWarmFanout(b *testing.B) {
	p, src, targets := buildWarmFanout(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refs, _, err := p.Fanout(src, targets, allocBenchPayload)
		if err != nil {
			b.Fatal(err)
		}
		for k := range targets {
			if err := targets[k].Release(refs[k]); err != nil {
				b.Fatal(err)
			}
		}
		out, err := src.Instance(0).Output()
		if err != nil {
			b.Fatal(err)
		}
		if err := src.Instance(0).Release(out); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPlanSubmit measures one single-Xfer plan through the DAG plane:
// build, submit, wait, release. The plan plane's bookkeeping (plan, node,
// job, result set) is its fixed per-operation budget.
func benchPlanSubmit(b *testing.B) {
	p, src, dst := buildWarmPair(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := roadrunner.NewPlan()
		node := pl.Xfer(src, dst)
		job, err := p.Submit(ctx, pl)
		if err != nil {
			b.Fatal(err)
		}
		res, err := job.Wait(ctx)
		if err != nil {
			b.Fatal(err)
		}
		nr := res.Node(node)
		if nr.Err != nil {
			b.Fatal(nr.Err)
		}
		if err := dst.Release(nr.Ref()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPoolSubmit measures the scheduler's submit path alone: b.N no-op
// tasks through the sharded pool, drained once outside the timed window's
// per-op accounting. Submit is a ring-buffer enqueue and must not allocate.
func benchPoolSubmit(b *testing.B) {
	pool := sched.New(2, 1024)
	defer pool.Close()
	task := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pool.Submit(task); err != nil {
			b.Fatal(err)
		}
	}
	pool.Wait()
}

func BenchmarkAllocWarmKernelTransfer(b *testing.B) { benchWarmKernelTransfer(b) }
func BenchmarkAllocWarmFanout(b *testing.B)         { benchWarmFanout(b) }
func BenchmarkAllocPlanSubmit(b *testing.B)         { benchPlanSubmit(b) }
func BenchmarkAllocPoolSubmit(b *testing.B)         { benchPoolSubmit(b) }

// TestAllocCeilings pins allocs/op ceilings for the three hot paths and
// fails on any increase — the in-tree half of the perf gate (cmd/perfgate
// guards the throughput trajectory; this guards the allocation one).
func TestAllocCeilings(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	cases := []struct {
		name    string
		ceiling int64
		bench   func(b *testing.B)
	}{
		{"warm-kernel-transfer", allocCeilingWarmTransfer, benchWarmKernelTransfer},
		{"warm-fanout", allocCeilingWarmFanout, benchWarmFanout},
		{"plan-submit", allocCeilingPlanSubmit, benchPlanSubmit},
		{"pool-submit", allocCeilingPoolSubmit, benchPoolSubmit},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := testing.Benchmark(c.bench)
			if got := r.AllocsPerOp(); got > c.ceiling {
				t.Errorf("%s: %d allocs/op, ceiling %d — hot-path allocation regression (see DESIGN.md §10)",
					c.name, got, c.ceiling)
			}
		})
	}
}
