package roadrunner

import "context"

// TransferFuture is the pending result of an asynchronous transfer (or an
// asynchronous multi-hop chain, which yields the same triple). A future
// resolves exactly once; Wait, WaitCtx and Done may be used from any number
// of goroutines.
type TransferFuture struct {
	done chan struct{}
	ref  DataRef
	rep  Report
	err  error
}

func newFuture() *TransferFuture {
	return &TransferFuture{done: make(chan struct{})}
}

func (f *TransferFuture) resolve(ref DataRef, rep Report, err error) {
	f.ref, f.rep, f.err = ref, rep, err
	close(f.done)
}

// Done returns a channel closed when the future resolves (select-friendly).
func (f *TransferFuture) Done() <-chan struct{} { return f.done }

// Wait blocks until the future resolves and returns the delivery, report
// and error exactly as the synchronous call would have.
func (f *TransferFuture) Wait() (DataRef, Report, error) {
	<-f.done
	return f.ref, f.rep, f.err
}

// WaitCtx is Wait bounded by ctx: it returns ctx's error if the context
// ends first. The abandoned wait does not cancel the underlying operation
// (submit with a context for that); the future still resolves and a later
// Wait collects it.
func (f *TransferFuture) WaitCtx(ctx context.Context) (DataRef, Report, error) {
	if ctx == nil {
		return f.Wait()
	}
	select {
	case <-f.done:
		return f.ref, f.rep, f.err
	case <-ctx.Done():
		return DataRef{}, Report{}, ctx.Err()
	}
}

// futureOf adapts one plan node of a submitted job into a TransferFuture:
// the future resolves with the node's single delivery when the node lands.
// A failed submission resolves every future immediately with the error.
func (p *Platform) futureOf(pl *Plan, node *PlanNode) *TransferFuture {
	fut := newFuture()
	job, err := p.Submit(context.Background(), pl)
	if err != nil {
		fut.resolve(DataRef{}, Report{}, err)
		return fut
	}
	go func() {
		<-job.NodeDone(node)
		nr, _ := job.NodeResult(node)
		fut.resolve(nr.Ref(), nr.Report(), nr.Err)
	}()
	return fut
}

// TransferAsync schedules Transfer on the platform's bounded worker pool
// and returns immediately — a single-node Plan submitted with
// context.Background() (DESIGN.md §7). Ordering guarantees are exactly
// those of the engine: transfers touching disjoint Wasm VMs run in
// parallel; transfers sharing a VM are serialized by that VM's lock in
// submission-arrival order of the workers, not in TransferAsync call order.
// Callers that need happens-before between two async transfers must Wait on
// the first before submitting the second.
//
// Submission applies backpressure: when the pool's queue is full, the
// transfer waits for a slot rather than buffering unboundedly.
func (p *Platform) TransferAsync(src, dst *Function, opts ...TransferOption) *TransferFuture {
	pl := NewPlan()
	return p.futureOf(pl, pl.Xfer(src, dst, opts...))
}

// ChainAsync schedules a whole multi-hop Chain on the worker pool and
// returns immediately — a single Hop-node Plan submitted with
// context.Background(). The chain streams exactly as the synchronous Chain
// does (see ChainWith): hop i+1's source stage starts as soon as hop i's
// ingress lands, and each hop locks only the VM whose bytes are moving at
// that stage, so interior VMs are free between their stages. Chains
// submitted concurrently interleave across workers and VMs — including
// chains that share interior functions, which serialize only on the shared
// VM's stage-scoped lock, never on whole hops.
func (p *Platform) ChainAsync(n int, fns ...*Function) *TransferFuture {
	pl := NewPlan()
	return p.futureOf(pl, pl.Hop(n, fns))
}

// MulticastFuture is the pending result of an asynchronous multicast: the
// per-target deliveries and reports, resolved together (the fan-out is one
// pass over the shared hose, so there is no per-target completion to
// expose).
type MulticastFuture struct {
	done chan struct{}
	refs []DataRef
	reps []Report
	err  error
}

func (f *MulticastFuture) resolve(refs []DataRef, reps []Report, err error) {
	f.refs, f.reps, f.err = refs, reps, err
	close(f.done)
}

// Done returns a channel closed when the future resolves (select-friendly).
func (f *MulticastFuture) Done() <-chan struct{} { return f.done }

// Wait blocks until the future resolves and returns the per-target
// deliveries, reports and error exactly as Multicast would have.
func (f *MulticastFuture) Wait() ([]DataRef, []Report, error) {
	<-f.done
	return f.refs, f.reps, f.err
}

// WaitCtx is Wait bounded by ctx; see TransferFuture.WaitCtx for the
// contract.
func (f *MulticastFuture) WaitCtx(ctx context.Context) ([]DataRef, []Report, error) {
	if ctx == nil {
		return f.Wait()
	}
	select {
	case <-f.done:
		return f.refs, f.reps, f.err
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
}

// MulticastAsync schedules Multicast on the worker pool and returns
// immediately — a single Cast-node Plan submitted with
// context.Background(). The future resolves with exactly the triple the
// synchronous Multicast would have returned.
func (p *Platform) MulticastAsync(src *Function, targets []*Function, opts ...TransferOption) *MulticastFuture {
	fut := &MulticastFuture{done: make(chan struct{})}
	pl := NewPlan()
	node := pl.Cast(src, targets, opts...)
	job, err := p.Submit(context.Background(), pl)
	if err != nil {
		fut.resolve(nil, nil, err)
		return fut
	}
	go func() {
		<-job.NodeDone(node)
		nr, _ := job.NodeResult(node)
		fut.resolve(nr.Refs, nr.Reports, nr.Err)
	}()
	return fut
}

// FanoutAsync produces an n-byte payload at a routed instance of src once,
// then batches the delivery to every target across the worker pool,
// returning one future per target. The produce step is synchronous (it must
// happen before any hop) and its instance plus output region are pinned
// into every delivery, so later routed operations on src cannot retarget
// the fan-out mid-flight; the fan-out itself is a Plan with one Xfer node
// per target — the deliveries proceed as workers free up, each future
// resolving as its node lands, with all targets' flows modeled as sharing
// the link like Fanout.
func (p *Platform) FanoutAsync(src *Function, targets []*Function, n int) ([]*TransferFuture, error) {
	si, out, err := p.produceRouted(src, n)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		// Nothing to deliver; the produced region stays registered as
		// src's output, exactly as a zero-iteration delivery loop left it.
		return []*TransferFuture{}, nil
	}
	pl := NewPlan()
	nodes := make([]*PlanNode, len(targets))
	for i, dst := range targets {
		nodes[i] = pl.Xfer(src, dst,
			WithSourceInstance(si), WithSourceRef(out), WithFlows(len(targets)))
	}
	job, err := p.Submit(context.Background(), pl)
	futs := make([]*TransferFuture, len(targets))
	for i := range futs {
		futs[i] = newFuture()
	}
	if err != nil {
		// No delivery will ever read the produced region; hand it back so
		// a rejected fan-out leaves the source allocator at baseline, as
		// the synchronous failure path does.
		_ = si.inner.Deallocate(out.Ptr)
		for _, fut := range futs {
			fut.resolve(DataRef{}, Report{}, err)
		}
		return futs, nil
	}
	for i := range nodes {
		i := i
		go func() {
			<-job.NodeDone(nodes[i])
			nr, _ := job.NodeResult(nodes[i])
			futs[i].resolve(nr.Ref(), nr.Report(), nr.Err)
		}()
	}
	return futs, nil
}
