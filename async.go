package roadrunner

// TransferFuture is the pending result of an asynchronous transfer (or an
// asynchronous multi-hop chain, which yields the same triple). A future
// resolves exactly once; Wait and Done may be used from any number of
// goroutines.
type TransferFuture struct {
	done chan struct{}
	ref  DataRef
	rep  Report
	err  error
}

func newFuture() *TransferFuture {
	return &TransferFuture{done: make(chan struct{})}
}

func (f *TransferFuture) resolve(ref DataRef, rep Report, err error) {
	f.ref, f.rep, f.err = ref, rep, err
	close(f.done)
}

// Done returns a channel closed when the future resolves (select-friendly).
func (f *TransferFuture) Done() <-chan struct{} { return f.done }

// Wait blocks until the future resolves and returns the delivery, report
// and error exactly as the synchronous call would have.
func (f *TransferFuture) Wait() (DataRef, Report, error) {
	<-f.done
	return f.ref, f.rep, f.err
}

// TransferAsync schedules Transfer on the platform's bounded worker pool
// and returns immediately. Ordering guarantees are exactly those of the
// engine: transfers touching disjoint Wasm VMs run in parallel; transfers
// sharing a VM are serialized by that VM's lock in submission-arrival order
// of the workers, not in TransferAsync call order. Callers that need
// happens-before between two async transfers must Wait on the first before
// submitting the second.
//
// Submission applies backpressure: when the pool's queue is full,
// TransferAsync blocks until a slot frees rather than buffering unboundedly.
func (p *Platform) TransferAsync(src, dst *Function, opts ...TransferOption) *TransferFuture {
	fut := newFuture()
	pool := p.scheduler()
	if pool == nil {
		fut.resolve(DataRef{}, Report{}, ErrClosed)
		return fut
	}
	if err := pool.Submit(func() {
		fut.resolve(p.Transfer(src, dst, opts...))
	}); err != nil {
		fut.resolve(DataRef{}, Report{}, ErrClosed)
	}
	return fut
}

// ChainAsync schedules a whole multi-hop Chain on the worker pool and
// returns immediately. The chain streams exactly as the synchronous Chain
// does (see ChainWith): hop i+1's source stage starts as soon as hop i's
// ingress lands, and each hop locks only the VM whose bytes are moving at
// that stage, so interior VMs are free between their stages. Chains
// submitted concurrently interleave across workers and VMs — including
// chains that share interior functions, which serialize only on the shared
// VM's stage-scoped lock, never on whole hops.
func (p *Platform) ChainAsync(n int, fns ...*Function) *TransferFuture {
	fut := newFuture()
	pool := p.scheduler()
	if pool == nil {
		fut.resolve(DataRef{}, Report{}, ErrClosed)
		return fut
	}
	if err := pool.Submit(func() {
		fut.resolve(p.Chain(n, fns...))
	}); err != nil {
		fut.resolve(DataRef{}, Report{}, ErrClosed)
	}
	return fut
}

// FanoutAsync produces an n-byte payload at a routed instance of src once,
// then batches the delivery to every target across the worker pool,
// returning one future per target. The produce step is synchronous (it must
// happen before any hop) and its instance plus output region are pinned
// into every delivery, so later routed operations on src cannot retarget
// the fan-out mid-flight; the fan-out itself proceeds as workers free up,
// with all targets' flows modeled as sharing the link like Fanout.
func (p *Platform) FanoutAsync(src *Function, targets []*Function, n int) ([]*TransferFuture, error) {
	pool := p.scheduler()
	if pool == nil {
		return nil, ErrClosed
	}
	si, out, err := p.produceRouted(src, n)
	if err != nil {
		return nil, err
	}
	futs := make([]*TransferFuture, len(targets))
	for i, dst := range targets {
		fut := newFuture()
		futs[i] = fut
		dst := dst
		if err := pool.Submit(func() {
			fut.resolve(p.Transfer(src, dst,
				WithSourceInstance(si), WithSourceRef(out), WithFlows(len(targets))))
		}); err != nil {
			fut.resolve(DataRef{}, Report{}, ErrClosed)
		}
	}
	return futs, nil
}
