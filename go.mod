module github.com/polaris-slo-cloud/roadrunner-go

go 1.24
