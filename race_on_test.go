//go:build race

package roadrunner_test

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation changes allocation counts and wall-clock ratios
// that some tests pin.
const raceEnabled = true
